//! The incremental recoloring engine over the **segmented** commit path.
//!
//! [`SegRecolorer`] is [`Recolorer`] re-hosted on
//! [`deco_graph::SegmentedGraph`]: the same repair machinery (it literally
//! runs the same generic [`RegionHost`](crate::RegionHost) code), but the
//! commit underneath writes O(region) bytes instead of rewriting the whole
//! CSR snapshot, and the color store is indexed by **stable edge id**
//! instead of by shifting lexicographic index — so the per-commit carry
//! pass disappears too:
//!
//! * the legacy engine gathers `colors[edge_origin[e]]` for *every* edge,
//!   an O(m) pass per commit;
//! * here, surviving edges keep their id, so carry is O(churn): clear the
//!   freed ids, mark the inserted ids uncolored, done. Only a rebuild
//!   commit (a batch containing `shrink_isolated`) remaps the whole store,
//!   through [`deco_graph::SegCommitDelta::edge_remap`] — the same explicit O(m)
//!   event it already is for the topology.
//!
//! # Parity contract
//!
//! On a perfect transport the two engines are **bit-identical** per
//! commit: same [`CommitReport`] (up to `stats.commit_bytes`, the very
//! quantity the segmented path improves) and same final coloring in
//! lexicographic edge order ([`SegRecolorer::coloring`]). Under a faulty
//! transport the *colorings* still match bit for bit (the fault-era
//! priority order is host-independent; see the
//! [`host`](crate::RegionHost) module docs), while message-bit counters
//! may differ because priority fields are encoded with different widths.
//! The `segmented_parity` integration sweep pins all of this, with the
//! legacy engine as the differential oracle — the same playbook
//! `Engine::Naive` and `commit_rebuild` follow.

use crate::config::RecolorConfig;
use crate::host::RegionHost;
use crate::recolor::{
    emit_commit_close, emit_commit_open, emit_strategy, repair_region, resilient_repair,
    CommitReport, Recolorer, RepairStrategy, UNCOLORED,
};
use deco_core::edge::legal::{validate_edge_params, MessageMode};
use deco_core::params::{LegalParams, ParamError};
use deco_graph::coloring::{Color, EdgeColoring};
use deco_graph::{EdgeIdx, Graph, GraphError, SegmentedGraph, Vertex};
use deco_local::RunStats;
use deco_probe::Probe;
use std::sync::Arc;

/// Incremental recoloring over the segmented commit path. Mirrors
/// [`Recolorer`]'s API and behavior; see the module docs for what differs
/// underneath.
#[derive(Debug, Clone)]
pub struct SegRecolorer {
    sg: SegmentedGraph,
    /// Color per stable edge id (`sg.edge_bound()` entries): live ids hold
    /// committed colors between commits, freed ids hold [`UNCOLORED`]
    /// holes.
    colors: Vec<Color>,
    params: LegalParams,
    mode: MessageMode,
    /// Every per-instance knob; see [`RecolorConfig`]. `rebuild_commits`
    /// is ignored — the segmented engine has no rebuild commit path. The
    /// probe is shared with the segmented commit machinery and every
    /// repair sub-network.
    cfg: RecolorConfig,
    commits: usize,
    prev_bound: u64,
    /// A pending [`SegRecolorer::request_compaction`], consumed by the
    /// next successful commit.
    force_compaction: bool,
}

impl SegRecolorer {
    /// An engine over an initially edgeless graph with `n0` vertices.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `params` cannot contract.
    pub fn new(
        n0: usize,
        params: LegalParams,
        mode: MessageMode,
    ) -> Result<SegRecolorer, ParamError> {
        SegRecolorer::new_with(n0, params, mode, RecolorConfig::default())
    }

    /// An engine over an initially edgeless graph with `n0` vertices and
    /// the given per-instance configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `params` cannot contract.
    pub fn new_with(
        n0: usize,
        params: LegalParams,
        mode: MessageMode,
        cfg: RecolorConfig,
    ) -> Result<SegRecolorer, ParamError> {
        validate_edge_params(&params)?;
        let mut sg = SegmentedGraph::new(n0);
        sg.set_probe(Arc::clone(&cfg.probe));
        Ok(SegRecolorer {
            sg,
            colors: Vec::new(),
            params,
            mode,
            cfg,
            commits: 0,
            prev_bound: 0,
            force_compaction: false,
        })
    }

    /// An engine over an existing graph (edge ids start as its
    /// lexicographic indices). The initial coloring runs from scratch at
    /// the first [`SegRecolorer::commit`].
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `params` cannot contract.
    pub fn from_graph(
        g: &Graph,
        params: LegalParams,
        mode: MessageMode,
    ) -> Result<SegRecolorer, ParamError> {
        SegRecolorer::from_graph_with(g, params, mode, RecolorConfig::default())
    }

    /// An engine over an existing graph with the given per-instance
    /// configuration. The initial coloring runs from scratch at the first
    /// [`SegRecolorer::commit`].
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `params` cannot contract.
    pub fn from_graph_with(
        g: &Graph,
        params: LegalParams,
        mode: MessageMode,
        cfg: RecolorConfig,
    ) -> Result<SegRecolorer, ParamError> {
        validate_edge_params(&params)?;
        let m = g.m();
        let mut sg = SegmentedGraph::from_graph(g);
        sg.set_probe(Arc::clone(&cfg.probe));
        Ok(SegRecolorer {
            sg,
            colors: vec![UNCOLORED; m],
            params,
            mode,
            cfg,
            commits: 0,
            prev_bound: 0,
            force_compaction: false,
        })
    }

    /// The engine's per-instance configuration.
    pub fn config(&self) -> &RecolorConfig {
        &self.cfg
    }

    /// Re-points the engine's structured event sink mid-life; shared with
    /// the segmented commit machinery and every subsequent repair
    /// sub-network. See [`Recolorer::set_probe`].
    pub fn set_probe(&mut self, probe: Arc<dyn Probe>) {
        self.sg.set_probe(Arc::clone(&probe));
        self.cfg.probe = probe;
    }

    /// Replaces the engine's whole configuration mid-life (probe
    /// included, re-pointed as by [`Self::set_probe`]). Knobs are read at
    /// commit time, so the new settings govern every subsequent commit;
    /// past commits are obviously unaffected. The idiomatic use is
    /// cloning a warmed engine and re-running it under different knobs:
    /// `engine.config().clone().with_early_halt(false)` and so on.
    pub fn set_config(&mut self, cfg: RecolorConfig) {
        self.sg.set_probe(Arc::clone(&cfg.probe));
        self.cfg = cfg;
    }

    /// Requests a palette compaction: the next successful commit runs the
    /// from-scratch pipeline even if its batch alone would be clean. See
    /// [`crate::RegionRecolor::request_compaction`].
    pub fn request_compaction(&mut self) {
        self.force_compaction = true;
    }

    /// The engine's event sink.
    pub fn probe(&self) -> &Arc<dyn Probe> {
        &self.cfg.probe
    }

    /// The committed segmented store.
    pub fn segmented(&self) -> &SegmentedGraph {
        &self.sg
    }

    /// Commits applied so far.
    pub fn commits(&self) -> usize {
        self.commits
    }

    /// The palette bound the current snapshot's colors are kept under.
    pub fn color_bound(&self) -> u64 {
        Recolorer::bound_for(&self.params, self.sg.max_degree() as u64)
    }

    /// The color of the live edge with stable id `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is freed/out of range or the edge is uncolored (only
    /// possible before the first commit).
    pub fn color_of(&self, e: EdgeIdx) -> Color {
        assert!(self.sg.is_live(e), "edge id {e} is not live");
        let c = self.colors[e];
        assert_ne!(c, UNCOLORED, "coloring is complete between commits");
        c
    }

    /// The current coloring in **lexicographic edge order** — index `i`
    /// colors edge `i` of [`SegmentedGraph::to_graph`]'s snapshot, so the
    /// result compares directly against [`Recolorer::coloring`].
    ///
    /// # Panics
    ///
    /// Panics if called before the first commit on a
    /// [`SegRecolorer::from_graph`] engine.
    pub fn coloring(&self) -> EdgeColoring {
        EdgeColoring::new(
            self.sg
                .lex_edge_ids()
                .iter()
                .map(|&id| {
                    let c = self.colors[id as usize];
                    assert_ne!(c, UNCOLORED, "coloring is complete between commits");
                    c
                })
                .collect(),
        )
    }

    /// Queues insertion of edge `(u, v)` for the next commit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SegmentedGraph::insert_edge`].
    pub fn insert_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        self.sg.insert_edge(u, v)
    }

    /// Queues deletion of edge `(u, v)` for the next commit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SegmentedGraph::delete_edge`].
    pub fn delete_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        self.sg.delete_edge(u, v)
    }

    /// Queues addition of one vertex; returns its index.
    pub fn add_vertex(&mut self) -> Vertex {
        self.sg.add_vertex()
    }

    /// Queues an identifier override.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SegmentedGraph::set_ident`].
    pub fn set_ident(&mut self, v: Vertex, ident: u64) -> Result<(), GraphError> {
        self.sg.set_ident(v, ident)
    }

    /// Queues a shrink compaction; the containing commit rebuilds the
    /// segmented store and remaps the color store by
    /// [`deco_graph::SegCommitDelta::edge_remap`].
    pub fn shrink_isolated(&mut self) {
        self.sg.shrink_isolated()
    }

    /// Applies the queued batch and repairs the coloring — the
    /// [`Recolorer::commit`] pipeline on the segmented host.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the batch is invalid; the previous
    /// snapshot and coloring are untouched and the batch is discarded.
    pub fn commit(&mut self) -> Result<CommitReport, GraphError> {
        let old_colors = std::mem::take(&mut self.colors);
        let delta = match self.sg.commit() {
            Ok(d) => d,
            Err(e) => {
                self.colors = old_colors;
                return Err(e);
            }
        };
        let m = self.sg.m();
        let bound = Recolorer::bound_for(&self.params, self.sg.max_degree() as u64);

        // 1. Carry. Stable ids make the ordinary case O(churn): surviving
        // edges never move, so only the freed and inserted ids are
        // touched. A rebuild commit (shrink) reassigned every id and says
        // so via `edge_remap` — the one remaining O(m) carry.
        let mut colors = old_colors;
        if let Some(remap) = &delta.edge_remap {
            let mut remapped = vec![UNCOLORED; self.sg.edge_bound()];
            for (old_id, &new_id) in remap.iter().enumerate() {
                if new_id != Graph::NO_EDGE_ORIGIN {
                    remapped[new_id as usize] = colors[old_id];
                }
            }
            colors = remapped;
        } else {
            colors.resize(self.sg.edge_bound(), UNCOLORED);
            for &id in &delta.freed_ids {
                colors[id as usize] = UNCOLORED;
            }
            for &id in &delta.inserted_ids {
                colors[id as usize] = UNCOLORED;
            }
        }

        // 2. Region. The ordinary region is exactly the inserted ids
        // (carried colors cannot conflict; deletions never create
        // conflicts). A full live sweep is only needed when holes or
        // evictions can hide outside the delta: the engine's first commit
        // (pre-existing uncolored edges), a shrunk palette bound
        // (evictions), or a rebuild (fresh ids everywhere).
        let full_sweep = self.commits == 0 || bound < self.prev_bound || delta.edge_remap.is_some();
        let dirty: Vec<EdgeIdx> = if full_sweep {
            self.sg
                .edges_with_ids()
                .map(|(id, _)| id)
                .filter(|&id| {
                    let c = colors[id];
                    c == UNCOLORED || c >= bound
                })
                .collect()
        } else {
            let mut d: Vec<EdgeIdx> = delta.inserted_ids.iter().map(|&id| id as EdgeIdx).collect();
            d.sort_unstable();
            d
        };

        let commit = self.commits;
        self.commits += 1;
        let mut report = CommitReport {
            commit,
            inserted: delta.inserted.len(),
            deleted: delta.deleted.len(),
            n: self.sg.n(),
            m,
            max_degree: self.sg.max_degree(),
            dirty: dirty.len(),
            region_vertices: 0,
            strategy: RepairStrategy::Clean,
            recolored: 0,
            schedule_classes: 0,
            color_bound: bound,
            retries: 0,
            fallbacks: 0,
            stats: RunStats::zero(),
        };
        let cadence_due =
            self.cfg.compaction_every > 0 && (commit + 1) % self.cfg.compaction_every == 0;
        let compact = (cadence_due || self.force_compaction) && m > 0;
        self.force_compaction = false;
        emit_commit_open(&self.cfg.probe, &report, compact);
        if dirty.is_empty() && !compact {
            self.colors = colors;
            self.prev_bound = bound;
            report.stats.commit_bytes = delta.commit_bytes;
            emit_strategy(&self.cfg.probe, commit, RepairStrategy::Clean);
            emit_commit_close(&self.cfg.probe, &report);
            return Ok(report);
        }

        // 3+4. Repair through the same generic RegionHost machinery the
        // legacy engine runs — bit-identical sub-networks, bit-identical
        // outcomes.
        let from_scratch =
            compact || dirty.len() as u64 * 100 >= m as u64 * u64::from(self.cfg.threshold_pct);
        if from_scratch {
            emit_strategy(&self.cfg.probe, commit, RepairStrategy::FromScratch);
            let stats = self.sg.full_recolor_into(&mut colors, self.params, self.mode, &self.cfg);
            report.strategy = RepairStrategy::FromScratch;
            report.recolored = m;
            report.stats = stats;
        } else if self.cfg.transport.is_perfect() {
            let mut is_dirty = vec![false; self.sg.edge_bound()];
            for &e in &dirty {
                is_dirty[e] = true;
            }
            emit_strategy(&self.cfg.probe, commit, RepairStrategy::Incremental);
            let (stats, classes, region_vertices) = repair_region(
                &self.sg,
                &dirty,
                &is_dirty,
                &mut colors,
                self.params,
                self.mode,
                &self.cfg,
            );
            report.strategy = RepairStrategy::Incremental;
            report.recolored = dirty.len();
            report.schedule_classes = classes;
            report.region_vertices = region_vertices;
            report.stats = stats;
        } else {
            emit_strategy(&self.cfg.probe, commit, RepairStrategy::Incremental);
            resilient_repair(
                &self.sg,
                &dirty,
                &mut colors,
                self.params,
                self.mode,
                &self.cfg,
                &mut report,
            );
        }
        self.colors = colors;
        debug_assert!(self.sg.edges_with_ids().all(|(id, _)| self.colors[id] < bound));
        self.prev_bound = bound;
        report.stats.commit_bytes = delta.commit_bytes;
        emit_commit_close(&self.cfg.probe, &report);
        Ok(report)
    }
}
