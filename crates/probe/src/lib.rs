//! Deterministic observability for the deco workspace.
//!
//! Every layer of the system — the slot/naive delivery engines, the
//! [`Pipeline`](../deco_core/pipeline) phase runner, the streaming
//! `Recolorer`s and the commit machinery — emits structured [`Event`]s into
//! a [`Probe`]. The probe is the *only* observability channel: there is no
//! logging, no global state, no sampling. Three sinks cover every use:
//!
//! * [`NullProbe`] — the default everywhere; disabled, zero-cost (emit
//!   sites are gated on [`Probe::enabled`], so no event is even
//!   constructed);
//! * [`RecordingProbe`] — collects events in memory, for tests, benches and
//!   in-process report building;
//! * [`JsonlProbe`] — streams events to a file, one JSON object per line
//!   (the `deco-stream --profile out.jsonl` path), re-parsable with
//!   [`Event::parse_jsonl`].
//!
//! # Determinism contract
//!
//! Everything a probe records is **bit-deterministic**: for a fixed
//! scenario (graph, trace, seed, parameters) the sequence of deterministic
//! events is byte-identical across `DECO_THREADS`, `DECO_DELIVERY`, both
//! delivery engines and both commit paths — the same contract the bench
//! gate enforces on counters, extended to the whole event stream. Machine-
//! and configuration-dependent facts (wall clock, worker counts, per-round
//! delivery choices, spill-arena occupancy) are carried exclusively by
//! [`Event::Env`] entries, which [`Event::is_deterministic`] excludes —
//! the same policy as the bench gate's non-fatal `environment` blocks.
//! [`RecordingProbe::digest`] hashes exactly the deterministic subsequence,
//! so a recorded profile can be pinned as a single value and diffed across
//! thread counts and delivery modes.
//!
//! [`report::Report`] rolls a recorded (or re-parsed) event stream into a
//! per-phase cost breakdown; [`registry::Registry`] is the underlying
//! counters-and-histograms store with a stable text exposition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod registry;
pub mod report;
mod sink;

pub use event::{Counters, Event, ParseError};
pub use sink::{digest_events, null, read_jsonl, JsonlProbe, NullProbe, Probe, RecordingProbe};

/// The 64-bit FNV-1a hash the probe pins deterministic streams with (the
/// workspace's standard fingerprint primitive: no external hash crates in
/// the offline build).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
