//! The synchronous network simulator.
//!
//! # Delivery architecture (slot arenas)
//!
//! The simulator's hot path is built on the host graph's directed-edge
//! *slots* (see [`Graph::slots_of`] and [`Graph::mirror_slot`]): every
//! directed edge `u → v` has a fixed slot index, and a message from `u` to
//! `v` is one `Option` write into a preallocated arena at `u`'s slot —
//! O(1), no per-round allocation, no inbox sorting (slot ranges are already
//! neighbor-sorted) and no per-message search in the common case (outboxes
//! addressed in neighbor order are matched by a moving cursor; out-of-order
//! sends fall back to one binary search).
//!
//! Two arenas alternate roles every round: nodes read their inbox from the
//! arena written in the previous round and write sends into the other, so a
//! round never observes its own messages. A node that halted more than one
//! round ago leaves stale slots behind; receivers skip them with an O(1)
//! halt-round check instead of any clearing pass. Halted nodes leave the
//! active worklist entirely and cost nothing.
//!
//! # Adaptive delivery (scan vs push)
//!
//! Reading an inbox by scanning all of a receiver's in-slots costs O(deg)
//! per node per round even when almost nobody spoke — the long sparse tail
//! of the edge-coloring pipeline. The engine therefore supports a second,
//! *push-list* delivery mode: while posting, each worker also records the
//! receiver-side slot of every message it writes; if the round's sent count
//! is small relative to the live slot count, the next round sorts that list
//! once and each receiver reads exactly its occupied slots instead of
//! sweeping its whole neighborhood. [`Delivery::Adaptive`] (the default)
//! chooses per round from the previous round's sent count; [`Delivery::Scan`]
//! and [`Delivery::Push`] pin a mode for differential testing. The choice is
//! observable via [`Network::run_traced`] but never changes results.
//!
//! # Determinism contract
//!
//! For a fixed graph and protocol, `run*` produce bit-identical outputs,
//! [`RunStats`] and [`RoundLoad`] profiles — regardless of delivery engine
//! (slot-based or the [`Network::run_profiled_naive`] reference), of the
//! per-round scan/push delivery choice, and of the thread count used by
//! [`Network::run_profiled_threaded`]. Within a round every node reads only
//! its own inbox slice and writes only its own out slots, so parallel
//! stepping is an embarrassingly parallel map; stats are merged in fixed
//! chunk order. The integration tests pin this contract.

use crate::message::Message;
use crate::stats::RunStats;
use crate::transport::{Fate, InProcess, Transport};
use deco_graph::{Graph, Vertex};
use deco_probe::{Event, Probe};
use std::fmt::Write as _;
use std::sync::Arc;

/// Immutable per-node view handed to every [`Protocol`] callback.
///
/// Global quantities (`n`, `max_degree`) are common knowledge, exactly as the
/// paper assumes vertices know `n` and Δ.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// This node's vertex index in the host graph.
    pub vertex: Vertex,
    /// This node's distinct identifier (the paper's `Id`).
    pub ident: u64,
    /// Sorted neighbor vertex indices.
    pub neighbors: &'a [Vertex],
    /// Identifiers of the neighbors, aligned with `neighbors`.
    ///
    /// The LOCAL model lets endpoints learn each other's identifiers in one
    /// round; we provide them up front and charge no round for it (every
    /// algorithm in the paper spends its first round exchanging identifiers
    /// or colors anyway, and the `O(1)` additive term absorbs it — see
    /// Lemma 5.2's `+O(1)`).
    pub neighbor_idents: &'a [u64],
    /// Number of vertices in the network (common knowledge).
    pub n: usize,
    /// Maximum degree Δ of the network (common knowledge).
    pub max_degree: usize,
    /// Current round number: 0 in [`Protocol::start`], then 1, 2, ... in
    /// [`Protocol::round`].
    pub round: usize,
}

impl NodeCtx<'_> {
    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Convenience: the same message addressed to every neighbor.
    ///
    /// Allocates one `Vec` per call; inside [`Protocol::round`], prefer
    /// returning [`Action::Broadcast`], which writes the arena slots
    /// directly and allocates nothing.
    pub fn broadcast<M: Clone>(&self, msg: M) -> Vec<(Vertex, M)> {
        self.neighbors.iter().map(|&u| (u, msg.clone())).collect()
    }

    /// The identifier of neighbor `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a neighbor of this node.
    pub fn ident_of(&self, u: Vertex) -> u64 {
        let i = self
            .neighbors
            .binary_search(&u)
            // INVARIANT: the LOCAL model permits sends only along incident edges; anything else is a protocol bug worth aborting on.
            .unwrap_or_else(|_| panic!("vertex {u} is not a neighbor of {}", self.vertex));
        self.neighbor_idents[i]
    }
}

/// What a node does at the end of a round.
#[derive(Debug, Clone)]
pub enum Action<M> {
    /// Keep running; send the given messages (addressed to neighbors).
    Continue(Vec<(Vertex, M)>),
    /// Keep running; send a copy of the same message to *every* neighbor.
    ///
    /// Equivalent to `Continue(ctx.broadcast(msg))` but allocation-free:
    /// the simulator clones the message straight into the delivery slots.
    Broadcast(M),
    /// Halt after sending the given messages. A halted node no longer sends,
    /// and its inbox is discarded.
    Halt(Vec<(Vertex, M)>),
}

impl<M> Action<M> {
    /// Halt without sending anything.
    pub fn halt() -> Action<M> {
        Action::Halt(Vec::new())
    }

    /// Continue without sending anything (idle round).
    pub fn idle() -> Action<M> {
        Action::Continue(Vec::new())
    }
}

/// A shared, immutable configuration table referenced by every node of a
/// protocol — schedules, palettes, precomputed per-edge specs.
///
/// Protocol state must be `Send` so [`Network::run_profiled_threaded`] can
/// step nodes on worker threads; per-node handles to a common table are
/// therefore atomically reference-counted (`Arc`), never `Rc`. The tables
/// are written once before the run and only read inside protocol callbacks,
/// so the atomic refcount is touched `n` times at construction and never on
/// the delivery hot path.
pub type SharedConfig<T> = std::sync::Arc<T>;

/// A per-node state machine run by [`Network::run`].
///
/// The simulator creates one value per vertex, calls [`Protocol::start`]
/// once (round 0, before any delivery), then calls [`Protocol::round`] once
/// per synchronous round with the messages delivered that round, until every
/// node has returned [`Action::Halt`]. Finally [`Protocol::finish`] extracts
/// each node's output.
///
/// The LOCAL model allows at most one message per directed edge per round;
/// the slot engine enforces this (sending twice to the same neighbor in one
/// round panics).
pub trait Protocol {
    /// Message type exchanged by this protocol.
    type Msg: Message;
    /// Per-node result extracted when the run completes.
    type Output;

    /// Called once before the first round; returns the initial messages.
    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, Self::Msg)>;

    /// Called once per round with the messages received this round
    /// (sender-sorted). Returns the node's action for the round.
    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, Self::Msg)]) -> Action<Self::Msg>;

    /// Extracts the node's output after the network has quiesced.
    fn finish(self, ctx: &NodeCtx<'_>) -> Self::Output;
}

/// Typed failure of a simulated run (see the `try_run*` runners).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RunError {
    /// The round cap was exceeded: the protocol failed to halt within the
    /// budget set by [`Network::with_round_cap`]. Carries the stats
    /// accumulated through the capped rounds, so a caller that retries with
    /// a larger budget (e.g. the self-stabilizing repair loop in
    /// `deco-stream`) still accounts for the spent rounds and messages
    /// deterministically.
    RoundCapExceeded {
        /// The configured round cap.
        cap: usize,
        /// Nodes still live when the cap tripped.
        live: usize,
        /// Stats accumulated up to (and including) the last completed round.
        stats: RunStats,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::RoundCapExceeded { cap, live, .. } => write!(
                f,
                "round cap {cap} exceeded: protocol failed to halt ({live} nodes still live)"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Everything a traced run produces: the run itself, the per-round load
/// profile, and the per-round delivery traces.
pub type TracedRun<T> = (Run<T>, Vec<RoundLoad>, Vec<RoundTrace>);

/// The result of simulating a protocol on a network.
#[derive(Debug, Clone)]
pub struct Run<T> {
    /// Per-vertex outputs, indexed by vertex.
    pub outputs: Vec<T>,
    /// Round/message accounting for the run.
    pub stats: RunStats,
}

impl<T> Run<T> {
    /// Maps the per-vertex outputs, keeping the stats.
    pub fn map<U>(self, f: impl FnMut(T) -> U) -> Run<U> {
        Run { outputs: self.outputs.into_iter().map(f).collect(), stats: self.stats }
    }
}

/// Load observed in one simulated round (see [`Network::run_profiled`]).
///
/// Entry `r` of a profile records round `r + 1` of the run: what was
/// *delivered* that round, plus what had been *sent* toward it in the
/// preceding step phase (the start phase for the first entry). The gap
/// `sent_messages - messages` is traffic addressed to nodes that halted
/// before delivery; `messages <= sent_messages` always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundLoad {
    /// Messages delivered in this round.
    pub messages: usize,
    /// Total bits delivered in this round.
    pub bits: usize,
    /// Nodes still live at the start of the round.
    pub live_nodes: usize,
    /// Messages sent in the preceding step phase, due for delivery in this
    /// round (delivered or dropped at a halted receiver).
    pub sent_messages: usize,
    /// Bits sent in the preceding step phase.
    pub sent_bits: usize,
    /// Messages from the preceding step phase destroyed by the transport
    /// (zero on the default in-process transport).
    pub transport_dropped: usize,
    /// Bits from the preceding step phase destroyed by the transport.
    pub transport_dropped_bits: usize,
}

impl RoundLoad {
    /// Messages sent toward this round that were never delivered in it —
    /// because the receiver had already halted, the transport destroyed
    /// them, or the transport deferred them to a later round.
    ///
    /// Saturating: under a faulty transport a round can *deliver* more than
    /// the preceding phase sent (late messages from earlier phases arriving
    /// on top of the fresh traffic), in which case this reads zero.
    pub fn dropped_messages(&self) -> usize {
        self.sent_messages.saturating_sub(self.messages)
    }
}

/// Which delivery engine [`Network::run`] and [`Network::run_profiled`] use.
///
/// Both engines honor the same determinism contract and produce identical
/// results; [`Engine::Naive`] exists so whole algorithm pipelines (which
/// construct their own inner runs against a borrowed [`Network`]) can be
/// benchmarked and differentially tested against the pre-refactor delivery
/// path without any change to the algorithm code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The zero-allocation slot-arena engine (the default).
    #[default]
    Slot,
    /// The pre-refactor reference engine (per-round allocation + sorting).
    Naive,
}

/// How the slot engine assembles inboxes each round.
///
/// All modes are bit-identical in results, stats and profiles; they differ
/// only in wall-clock. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Delivery {
    /// Sweep every receiver's O(deg) in-slots (the PR 1 behavior).
    Scan,
    /// Always deliver from the sorted push list of last round's writes.
    Push,
    /// Choose per round from the previous round's sent count (the default):
    /// sparse rounds use the push list, dense rounds the slot sweep.
    #[default]
    Adaptive,
}

/// Which delivery path a round actually used (see [`Network::run_traced`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryChoice {
    /// The O(deg)-per-receiver slot sweep.
    Scan,
    /// The sorted push list of the previous round's writes.
    Push,
}

/// Per-round execution trace of a slot-engine run: which delivery path the
/// round used and how many worker threads stepped it. Purely observational —
/// results never depend on either.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundTrace {
    /// Delivery path used for the round's inboxes.
    pub delivery: DeliveryChoice,
    /// Worker threads that stepped the round (1 = sequential).
    pub workers: usize,
}

/// A simulated synchronous network over a host graph.
///
/// The simulator is deterministic: nodes are stepped in vertex order (or an
/// order-equivalent parallel schedule, see [`Network::run_profiled_threaded`])
/// and inboxes arrive sender-sorted. See the crate-level example.
#[derive(Debug)]
pub struct Network<'g> {
    graph: &'g Graph,
    /// Neighbor vertex per slot, aligned with the graph's CSR slots.
    flat_neighbors: Vec<Vertex>,
    /// Neighbor identifier per slot, aligned with `flat_neighbors`.
    flat_idents: Vec<u64>,
    round_cap: usize,
    threads: usize,
    engine: Engine,
    delivery: Delivery,
    early_halt: bool,
    transport: Arc<dyn Transport>,
    probe: Arc<dyn Probe>,
}

/// Run-length encodes a [`RoundTrace`] as `<mode><workers>x<len>` groups
/// (`s` = scan, `p` = push), e.g. `"s1x3,p4x2"` — three sequential scan
/// rounds then two push rounds stepped by four workers. This is the value
/// of the probe's `round_trace` [`Event::Env`] entry: delivery choices and
/// worker counts are machine/configuration facts, excluded from the
/// deterministic stream by the same policy as the bench gate's
/// `environment` blocks.
pub fn encode_round_trace(trace: &[RoundTrace]) -> String {
    let mut out = String::new();
    let mut i = 0;
    while i < trace.len() {
        let t = trace[i];
        let mut len = 1;
        while i + len < trace.len() && trace[i + len] == t {
            len += 1;
        }
        if !out.is_empty() {
            out.push(',');
        }
        let mode = match t.delivery {
            DeliveryChoice::Scan => 's',
            DeliveryChoice::Push => 'p',
        };
        let _ = write!(out, "{mode}{}x{len}", t.workers);
        i += len;
    }
    out
}

/// Parses a `DECO_THREADS` value; `None` means the variable is unset.
/// Returns the thread budget plus a warning when the value was malformed
/// and the default had to be used.
fn parse_threads(raw: Option<&str>) -> (usize, Option<String>) {
    let fallback = std::thread::available_parallelism().map_or(1, |p| p.get());
    match raw {
        None => (fallback, None),
        Some(s) => match s.parse::<usize>() {
            Ok(t) if t >= 1 => (t, None),
            _ => (
                fallback,
                Some(format!(
                    "DECO_THREADS must be a positive integer, got {s:?}; \
                     using default ({fallback})"
                )),
            ),
        },
    }
}

/// Parses a `DECO_DELIVERY` value; `None` means the variable is unset.
/// Unrecognized values fall back to [`Delivery::Adaptive`] with a warning.
fn parse_delivery(raw: Option<&str>) -> (Delivery, Option<String>) {
    match raw {
        None | Some("adaptive") => (Delivery::Adaptive, None),
        Some("scan") => (Delivery::Scan, None),
        Some("push") => (Delivery::Push, None),
        Some(other) => (
            Delivery::Adaptive,
            Some(format!(
                "DECO_DELIVERY must be scan|push|adaptive, got {other:?}; using adaptive"
            )),
        ),
    }
}

/// Reads the `DECO_THREADS` / `DECO_DELIVERY` defaults from the
/// environment, per call. Historically the parsed pair was cached in a
/// process-global `OnceLock`, which silently froze whatever the first
/// `Network` construction saw — an env matrix that flips the variables
/// between runs in one process was actually re-running the first leg, and
/// per-tenant overrides could never differ. Constructions are per commit
/// and the two `var` reads are trivia next to flattening the host graph,
/// so the cache bought nothing.
///
/// Malformed values warn **once** per process and fall back to the
/// defaults: a typo'd matrix leg should run (visibly) rather than abort
/// every `Network` construction in the process, and a warning per commit
/// would drown the run.
fn env_defaults() -> (usize, Delivery) {
    let threads_raw = std::env::var("DECO_THREADS").ok();
    let (threads, warn_threads) = parse_threads(threads_raw.as_deref());
    let delivery_raw = std::env::var("DECO_DELIVERY").ok();
    let (delivery, warn_delivery) = parse_delivery(delivery_raw.as_deref());
    if warn_threads.is_some() || warn_delivery.is_some() {
        static WARNED: std::sync::OnceLock<()> = std::sync::OnceLock::new();
        WARNED.get_or_init(|| {
            for warning in [warn_threads, warn_delivery].into_iter().flatten() {
                eprintln!("deco-local: {warning}");
            }
        });
    }
    (threads.min(16), delivery)
}

/// Minimum number of active nodes per worker thread before a round is
/// stepped in parallel; below `2 × this`, rounds run sequentially (thread
/// spawn overhead would dominate).
const MIN_ACTIVE_PER_THREAD: usize = 512;

/// Adaptive-delivery cost model: a push-list entry costs roughly this many
/// scan probes (sort + indirection), so a round uses the push list when
/// `sent × PUSH_COST_FACTOR < live slots`.
const PUSH_COST_FACTOR: usize = 4;

impl<'g> Network<'g> {
    /// Wraps a host graph in a simulator.
    ///
    /// The worker-thread budget defaults to the `DECO_THREADS` environment
    /// variable if set (the CI thread matrix), else available parallelism
    /// capped at 16; the delivery mode defaults to `DECO_DELIVERY`
    /// (`scan` / `push` / `adaptive`) if set, else [`Delivery::Adaptive`].
    /// Both variables are re-read on every construction, so they are a
    /// *default*, not process-wide state: two `Network`s in one process may
    /// run with different budgets (multi-tenant shards, the bench env
    /// matrix), and [`Network::with_threads`] / [`Network::with_delivery`]
    /// override the default per instance regardless of the environment.
    pub fn new(graph: &'g Graph) -> Network<'g> {
        let flat_neighbors: Vec<Vertex> =
            (0..graph.slot_count()).map(|s| graph.slot_neighbor(s)).collect();
        let flat_idents: Vec<u64> = flat_neighbors.iter().map(|&u| graph.ident(u)).collect();
        let (threads, delivery) = env_defaults();
        Network {
            graph,
            flat_neighbors,
            flat_idents,
            round_cap: 1_000_000,
            threads,
            engine: Engine::Slot,
            delivery,
            early_halt: true,
            transport: Arc::new(InProcess),
            probe: deco_probe::null(),
        }
    }

    /// The host graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    pub(crate) fn round_cap(&self) -> usize {
        self.round_cap
    }

    pub(crate) fn neighbors_of(&self, v: Vertex) -> &[Vertex] {
        &self.flat_neighbors[self.graph.slots_of(v)]
    }

    /// Sets a safety cap on rounds (default one million).
    ///
    /// The fallible runners ([`Network::try_run_profiled`],
    /// [`Network::try_run_traced`]) surface an exceeded cap as
    /// [`RunError::RoundCapExceeded`] — used by callers that budget rounds
    /// deliberately, like the self-stabilizing repair loop. The panicking
    /// runners (`run*`) panic with that error's message: for them an
    /// exceeded cap always indicates a protocol that fails to halt.
    pub fn with_round_cap(mut self, cap: usize) -> Network<'g> {
        self.round_cap = cap;
        self
    }

    /// Replaces the message transport (default: the perfect
    /// [`InProcess`] transport).
    ///
    /// A non-perfect transport (see [`Transport::is_perfect`]) routes the
    /// slot engine through its fault-tolerant path — sequential stepping,
    /// scan delivery, take-semantics fetches — so faulty runs are
    /// bit-deterministic for a fixed transport, independent of the thread
    /// budget and `DECO_THREADS`/`DECO_DELIVERY`. With the default perfect
    /// transport the engine is bit-identical to what it was before the
    /// transport seam existed.
    pub fn with_transport(mut self, transport: Arc<dyn Transport>) -> Network<'g> {
        self.transport = transport;
        self
    }

    /// The message transport in effect.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Sets the worker-thread budget used by the `*_threaded` runners
    /// (default: available parallelism, capped at 16). A budget of 1 forces
    /// sequential stepping. Results never depend on this value.
    pub fn with_threads(mut self, threads: usize) -> Network<'g> {
        self.threads = threads.max(1);
        self
    }

    /// Selects the delivery engine used by [`Network::run`] and
    /// [`Network::run_profiled`] (default: [`Engine::Slot`]). Algorithm
    /// pipelines that run inner protocols against this network inherit the
    /// choice, which is how the benches compare whole pipelines across
    /// engines.
    pub fn with_engine(mut self, engine: Engine) -> Network<'g> {
        self.engine = engine;
        self
    }

    /// Selects the slot engine's delivery mode (default:
    /// [`Delivery::Adaptive`], or the `DECO_DELIVERY` environment variable).
    /// Results are identical in every mode; only wall-clock differs.
    pub fn with_delivery(mut self, delivery: Delivery) -> Network<'g> {
        self.delivery = delivery;
        self
    }

    /// Enables or disables protocols' *early node halting* optimizations
    /// (default on). Protocols that know each node's last relevant round —
    /// e.g. the Panconesi–Rizzi assignment phase, where every node can read
    /// its last `(forest, CV color)` step off its incident edges — consult
    /// this flag and halt as soon as that round passes, instead of idling
    /// to the schedule's worst-case bound. Halted nodes leave the engine's
    /// active worklist and their arena slots are skipped, so late rounds
    /// step only the surviving frontier.
    ///
    /// Outputs are bit-identical either way (the same messages are sent and
    /// delivered); only round totals and live-node profiles move. Disabling
    /// is the differential-testing and benchmarking escape hatch.
    pub fn with_early_halt(mut self, on: bool) -> Network<'g> {
        self.early_halt = on;
        self
    }

    /// Whether protocols should halt nodes at their individually computed
    /// last relevant round (see [`Network::with_early_halt`]).
    pub fn early_halt(&self) -> bool {
        self.early_halt
    }

    /// Attaches an observability probe (default: the shared disabled
    /// [`deco_probe::NullProbe`], which costs one branch per run). With an
    /// enabled probe every successful run emits one
    /// [`Event::Round`] per delivery round (the [`RoundLoad`] profile in
    /// event form) plus a `round_trace` [`Event::Env`] entry encoding the
    /// per-round delivery choices and worker counts (see
    /// [`encode_round_trace`]) when the slot engine traced them. Emission
    /// happens post-run on the driving thread, so the hot path is untouched
    /// and event order is deterministic.
    pub fn with_probe(mut self, probe: Arc<dyn Probe>) -> Network<'g> {
        self.probe = probe;
        self
    }

    /// The observability probe in effect.
    pub fn probe(&self) -> &Arc<dyn Probe> {
        &self.probe
    }

    /// Emits a finished run's per-round profile (and, when non-empty, its
    /// execution trace) into the probe. Called exactly once per successful
    /// run by each runner family — the naive runners emit for themselves, so
    /// slot-side callers that delegate must not emit again.
    pub(crate) fn emit_run(&self, profile: &[RoundLoad], trace: &[RoundTrace]) {
        if !self.probe.enabled() {
            return;
        }
        for (i, load) in profile.iter().enumerate() {
            self.probe.emit(Event::Round {
                round: (i + 1) as u64,
                live_nodes: load.live_nodes as u64,
                messages: load.messages as u64,
                bits: load.bits as u64,
                sent_messages: load.sent_messages as u64,
                sent_bits: load.sent_bits as u64,
                transport_dropped: load.transport_dropped as u64,
            });
        }
        if !trace.is_empty() {
            self.probe.emit(Event::env("round_trace", encode_round_trace(trace)));
        }
    }

    /// Runs `protocol` (one instance per vertex, built by `make`) to
    /// quiescence and returns per-vertex outputs plus stats.
    ///
    /// # Panics
    ///
    /// Panics if a node addresses a message to a non-neighbor, sends twice
    /// to the same neighbor in one round, or the round cap is exceeded.
    pub fn run<P, F>(&self, make: F) -> Run<P::Output>
    where
        P: Protocol,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        self.run_profiled(make).0
    }

    /// Like [`Network::run`], but additionally returns the per-round load
    /// profile — useful to visualize an algorithm's phase structure (e.g.
    /// the quiet `log*` prefix followed by the busy recursion levels).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::run`].
    pub fn run_profiled<P, F>(&self, make: F) -> (Run<P::Output>, Vec<RoundLoad>)
    where
        P: Protocol,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        // INVARIANT: the infallible wrapper re-raises errors from the fallible variant; callers choosing it accept the panic.
        self.try_run_profiled(make).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Network::run_profiled`]: an exceeded round cap comes back
    /// as [`RunError::RoundCapExceeded`] (with the stats accumulated so
    /// far) instead of a panic. Protocol contract violations — messages to
    /// non-neighbors, duplicate sends — still panic: those are bugs, not
    /// runtime conditions.
    pub fn try_run_profiled<P, F>(
        &self,
        make: F,
    ) -> Result<(Run<P::Output>, Vec<RoundLoad>), RunError>
    where
        P: Protocol,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        match self.engine {
            Engine::Slot => {
                let (run, profile, trace) = engine::run(self, make, 1, engine::SeqStepper)?;
                self.emit_run(&profile, &trace);
                Ok((run, profile))
            }
            Engine::Naive => self.try_run_profiled_naive(make),
        }
    }

    /// [`Network::run`] with deterministic parallel round stepping.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::run`].
    pub fn run_threaded<P, F>(&self, make: F) -> Run<P::Output>
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        self.run_profiled_threaded(make).0
    }

    /// [`Network::run_profiled`] with deterministic parallel round stepping.
    ///
    /// Rounds with enough active nodes are stepped by up to
    /// [`Network::with_threads`] workers: the active worklist is split into
    /// contiguous vertex ranges, and each worker reads the previous round's
    /// arena (shared) while writing its own nodes' out-slots (exclusive,
    /// disjoint slices) — no locks, no unsafe, no nondeterminism. Outputs,
    /// stats and profile are bit-identical to the sequential engine for
    /// every thread budget; only wall-clock changes. Requires the `parallel`
    /// feature (on by default); without it this is sequential.
    ///
    /// Honors [`Network::with_engine`]: under [`Engine::Naive`] this routes
    /// to the (sequential) reference engine, which the determinism contract
    /// makes observationally identical — it is how whole pipelines are
    /// benchmarked against the pre-refactor delivery path.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::run`].
    pub fn run_profiled_threaded<P, F>(&self, make: F) -> (Run<P::Output>, Vec<RoundLoad>)
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        let (run, profile, _) = self.run_traced(make);
        (run, profile)
    }

    /// [`Network::run_profiled_threaded`] plus the per-round execution trace
    /// (delivery choice and worker count), for benches and diagnostics. The
    /// trace is empty under [`Engine::Naive`], which has no slot machinery.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::run`].
    pub fn run_traced<P, F>(&self, make: F) -> (Run<P::Output>, Vec<RoundLoad>, Vec<RoundTrace>)
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        // INVARIANT: the infallible wrapper re-raises errors from the fallible variant; callers choosing it accept the panic.
        self.try_run_traced(make).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Network::run_traced`]: an exceeded round cap comes back
    /// as [`RunError::RoundCapExceeded`] instead of a panic (see
    /// [`Network::try_run_profiled`]).
    pub fn try_run_traced<P, F>(&self, make: F) -> Result<TracedRun<P::Output>, RunError>
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        if self.engine == Engine::Naive {
            // The naive runner emits its own profile into the probe.
            let (run, profile) = self.try_run_profiled_naive(make)?;
            return Ok((run, profile, Vec::new()));
        }
        #[cfg(feature = "parallel")]
        let result = engine::run(self, make, self.threads, engine::ParStepper);
        #[cfg(not(feature = "parallel"))]
        let result = engine::run(self, make, 1, engine::SeqStepper);
        if let Ok((_, profile, trace)) = &result {
            self.emit_run(profile, trace);
        }
        result
    }

    pub(crate) fn ctx_for(&self, v: Vertex, round: usize) -> NodeCtx<'_> {
        let range = self.graph.slots_of(v);
        NodeCtx {
            vertex: v,
            ident: self.graph.ident(v),
            neighbors: &self.flat_neighbors[range.clone()],
            neighbor_idents: &self.flat_idents[range],
            n: self.graph.n(),
            max_degree: self.graph.max_degree(),
            round,
        }
    }
}

/// The slot-arena delivery engine. See the module docs for the design.
mod engine {
    use super::{
        Action, Delivery, DeliveryChoice, Fate, Message, Network, NodeCtx, Protocol, RoundLoad,
        RoundTrace, Run, RunError, RunStats, TracedRun, Vertex, PUSH_COST_FACTOR,
    };
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Never-halted sentinel for `halt_round`.
    const LIVE: usize = usize::MAX;

    /// A message the transport deferred, waiting in the engine's pending
    /// queue for its arrival round. Ordered by `(arrival, seq)` — `seq` is
    /// a monotone posting counter, so equal-arrival messages inject in the
    /// deterministic order they were posted (and re-postponed entries keep
    /// their original rank).
    struct Pending<M> {
        arrival: usize,
        seq: u64,
        /// Sender-side directed-edge slot (identifies sender and receiver).
        slot: u32,
        /// Slot owner, cached to bump the arena occupancy on injection.
        from: Vertex,
        msg: M,
    }

    impl<M> PartialEq for Pending<M> {
        fn eq(&self, other: &Pending<M>) -> bool {
            self.arrival == other.arrival && self.seq == other.seq
        }
    }

    impl<M> Eq for Pending<M> {}

    impl<M> PartialOrd for Pending<M> {
        fn partial_cmp(&self, other: &Pending<M>) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl<M> Ord for Pending<M> {
        fn cmp(&self, other: &Pending<M>) -> std::cmp::Ordering {
            (self.arrival, self.seq).cmp(&(other.arrival, other.seq))
        }
    }

    /// Per-worker reusable state; all buffers reach a steady size after the
    /// first rounds and are never reallocated again.
    pub(super) struct Scratch<M> {
        /// Inbox assembly buffer, reused across nodes and rounds.
        inbox: Vec<(Vertex, M)>,
        /// Vertices that returned `Halt` this round (applied sequentially
        /// after the parallel phase).
        halts: Vec<Vertex>,
        /// Messages written this round, packed `receiver_slot << 32 |
        /// sender_slot` — next round's push list. Packing both slots lets
        /// push delivery skip the random mirror lookup per message. Capped
        /// at `push_cap`: a worker that overflows the cap proves the round
        /// is too dense for push delivery, so recording stops.
        pushed: Vec<u64>,
        push_cap: usize,
        push_overflow: bool,
        delivered_msgs: usize,
        delivered_bits: usize,
        sent_msgs: usize,
        sent_bits: usize,
        max_bits: usize,
        /// Messages the transport deferred this round: `(arrival_round,
        /// sender-side slot, message)`, drained into the engine's pending
        /// queue after the step (faulty runs are sequential, so only
        /// scratch 0 ever fills this).
        delayed: Vec<(usize, u32, M)>,
        /// Messages the transport destroyed this round.
        fault_dropped_msgs: usize,
        fault_dropped_bits: usize,
    }

    impl<M> Scratch<M> {
        fn new() -> Scratch<M> {
            Scratch {
                inbox: Vec::new(),
                halts: Vec::new(),
                pushed: Vec::new(),
                push_cap: 0,
                push_overflow: false,
                delivered_msgs: 0,
                delivered_bits: 0,
                sent_msgs: 0,
                sent_bits: 0,
                max_bits: 0,
                delayed: Vec::new(),
                fault_dropped_msgs: 0,
                fault_dropped_bits: 0,
            }
        }

        fn reset_round(&mut self, push_cap: usize) {
            self.halts.clear();
            self.pushed.clear();
            self.push_cap = push_cap;
            self.push_overflow = false;
            self.delivered_msgs = 0;
            self.delivered_bits = 0;
            self.sent_msgs = 0;
            self.sent_bits = 0;
            self.fault_dropped_msgs = 0;
            self.fault_dropped_bits = 0;
            // max_bits survives: it is a run-wide maximum.
            // `delayed` is drained by the engine after every step.
        }

        fn record_sent(&mut self, bits: usize) {
            self.sent_msgs += 1;
            self.sent_bits += bits;
            self.max_bits = self.max_bits.max(bits);
        }

        /// Records a posted message for the next round's push list
        /// (a no-op beyond the cap — see `pushed`).
        #[inline]
        fn record_push(&mut self, mirror_slot: u32, send_slot: usize) {
            if self.pushed.len() < self.push_cap {
                self.pushed.push(((mirror_slot as u64) << 32) | send_slot as u64);
            } else {
                self.push_overflow = true;
            }
        }
    }

    /// The previous round's arena, borrowed exclusively (sequential: inbox
    /// messages are moved out and the sender's occupancy count drops) or
    /// shared (parallel: cloned, occupancy untouched).
    ///
    /// `occ[v]` is the number of occupied (`Some`) slots vertex `v` owns in
    /// this arena — the invariant both variants maintain. A zero count lets
    /// receivers skip a quiet sender with one dense load, and lets the
    /// sender skip the clear pass on its next write into the arena; in
    /// sequential runs, where takes drain the slots, the steady state of a
    /// sparse round does almost no arena work at all.
    enum Prev<'a, M> {
        Excl { slots: &'a mut [Option<M>], occ: &'a mut [u32] },
        Shared { slots: &'a [Option<M>], occ: &'a [u32] },
    }

    impl<M: Clone> Prev<'_, M> {
        /// Whether sender `u` has no occupied slots left in this arena.
        #[inline]
        fn sender_quiet(&self, u: Vertex) -> bool {
            match self {
                Prev::Excl { occ, .. } => occ[u] == 0,
                Prev::Shared { occ, .. } => occ[u] == 0,
            }
        }

        #[inline]
        fn fetch(&mut self, slot: usize, sender: Vertex) -> Option<M> {
            match self {
                Prev::Excl { slots, occ } => {
                    let m = slots[slot].take();
                    if m.is_some() {
                        occ[sender] -= 1;
                    }
                    m
                }
                Prev::Shared { slots, .. } => slots[slot].clone(),
            }
        }
    }

    /// Read-only state shared by all workers within a round.
    pub(super) struct Shared<'a, 'g> {
        net: &'a Network<'g>,
        offsets: &'a [usize],
        mirror: &'a [u32],
        /// Round in which each vertex halted (`LIVE` if still running).
        halt_round: &'a [usize],
        /// Whether the run goes through a non-perfect transport. Posts then
        /// consult the transport per message, and the stale-slot skip is
        /// bypassed (safe: faulty runs always take-fetch, so arenas stay
        /// drained; necessary: a late message from a halted sender must
        /// still deliver).
        faulty: bool,
    }

    /// Collects one node's inbox from the previous arena into `scratch`.
    ///
    /// Slots arrive in neighbor order, so the inbox is sender-sorted with
    /// no sorting. A sender that halted before the previous round left only
    /// stale slots; the halt-round check skips them in O(1).
    #[inline]
    fn fill_inbox<M: Message>(
        sh: &Shared<'_, '_>,
        v: Vertex,
        round: usize,
        prev: &mut Prev<'_, M>,
        scratch: &mut Scratch<M>,
    ) {
        scratch.inbox.clear();
        for s in sh.offsets[v]..sh.offsets[v + 1] {
            let u = sh.net.flat_neighbors[s];
            if prev.sender_quiet(u) {
                continue; // nothing of u's left in the previous arena
            }
            if !sh.faulty && sh.halt_round[u] < round - 1 {
                continue; // stale slots from a long-halted sender (LIVE = MAX never trips)
            }
            if let Some(m) = prev.fetch(sh.mirror[s] as usize, u) {
                scratch.delivered_msgs += 1;
                scratch.delivered_bits += m.size_bits();
                scratch.inbox.push((u, m));
            }
        }
    }

    /// Push-mode [`fill_inbox`]: `entries` lists exactly this node's
    /// messages written in the previous step phase (packed
    /// `receiver_slot << 32 | sender_slot`), ascending. Ascending
    /// receiver-slot order within the node's range *is* neighbor order, so
    /// the inbox comes out sender-sorted, identical to the scan sweep —
    /// every entry is fresh by construction, so no staleness checks, and
    /// the packed sender slot spares the mirror lookup.
    #[inline]
    fn fill_inbox_from_push<M: Message>(
        sh: &Shared<'_, '_>,
        entries: &[u64],
        prev: &mut Prev<'_, M>,
        scratch: &mut Scratch<M>,
    ) {
        scratch.inbox.clear();
        for &packed in entries {
            let u = sh.net.flat_neighbors[(packed >> 32) as usize];
            if let Some(m) = prev.fetch((packed & u32::MAX as u64) as usize, u) {
                scratch.delivered_msgs += 1;
                scratch.delivered_bits += m.size_bits();
                scratch.inbox.push((u, m));
            }
        }
    }

    /// Writes one node's outgoing messages into its own out-slots.
    ///
    /// `cur` is the chunk-local window of the write arena starting at slot
    /// `cur_base`; `occ` is the node's occupancy count for that arena (the
    /// invariant: exactly `*occ` slots of the node's range are `Some`). The
    /// slots are cleared first — skipped entirely when the count says the
    /// range is already clean, which after a sequential round's takes is
    /// the common case — then each message lands at the slot of its
    /// addressee: a moving cursor matches neighbor-ordered outboxes in O(1)
    /// per message, with a binary-search fallback for out-of-order sends.
    ///
    /// Under a non-perfect transport ([`Shared::faulty`]) each message's
    /// [`Fate`] is consulted before the write: drops are counted and
    /// destroyed, delays go to the scratch's deferred list instead of the
    /// arena. The fault-free path is untouched.
    #[allow(clippy::too_many_arguments)]
    fn post_list<M: Message>(
        sh: &Shared<'_, '_>,
        from: Vertex,
        out: Vec<(Vertex, M)>,
        round: usize,
        cur: &mut [Option<M>],
        cur_base: usize,
        occ: &mut u32,
        scratch: &mut Scratch<M>,
    ) {
        if sh.faulty {
            post_list_faulty(sh, from, out, round, cur, cur_base, occ, scratch);
            return;
        }
        let range = sh.offsets[from]..sh.offsets[from + 1];
        if *occ > 0 {
            for s in range.clone() {
                cur[s - cur_base] = None;
            }
        }
        *occ = out.len() as u32;
        let nbrs = &sh.net.flat_neighbors[range.clone()];
        let mut cursor = 0usize;
        for (to, msg) in out {
            let i = if cursor < nbrs.len() && nbrs[cursor] == to {
                cursor += 1;
                cursor - 1
            } else {
                match nbrs.binary_search(&to) {
                    Ok(i) => {
                        cursor = i + 1;
                        i
                    }
                    Err(_) => {
                        // INVARIANT: the LOCAL model permits sends only along incident edges; anything else is a protocol bug worth aborting on.
                        panic!("node {from} addressed a message to non-neighbor {to}")
                    }
                }
            };
            scratch.record_sent(msg.size_bits());
            scratch.record_push(sh.mirror[range.start + i], range.start + i);
            let cell = &mut cur[range.start + i - cur_base];
            assert!(
                cell.is_none(),
                "node {from} sent two messages to {to} in one round (the LOCAL model \
                 allows one message per neighbor per round)"
            );
            *cell = Some(msg);
        }
    }

    /// [`post_list`] through a non-perfect transport: every message is
    /// still counted as sent, then its fate decides whether it lands in the
    /// arena (`occ` counts only landed messages), dies, or is deferred.
    #[allow(clippy::too_many_arguments)]
    fn post_list_faulty<M: Message>(
        sh: &Shared<'_, '_>,
        from: Vertex,
        out: Vec<(Vertex, M)>,
        round: usize,
        cur: &mut [Option<M>],
        cur_base: usize,
        occ: &mut u32,
        scratch: &mut Scratch<M>,
    ) {
        let range = sh.offsets[from]..sh.offsets[from + 1];
        if *occ > 0 {
            for s in range.clone() {
                cur[s - cur_base] = None;
            }
        }
        *occ = 0;
        let nbrs = &sh.net.flat_neighbors[range.clone()];
        let mut cursor = 0usize;
        for (to, msg) in out {
            let i = if cursor < nbrs.len() && nbrs[cursor] == to {
                cursor += 1;
                cursor - 1
            } else {
                match nbrs.binary_search(&to) {
                    Ok(i) => {
                        cursor = i + 1;
                        i
                    }
                    Err(_) => {
                        // INVARIANT: the LOCAL model permits sends only along incident edges; anything else is a protocol bug worth aborting on.
                        panic!("node {from} addressed a message to non-neighbor {to}")
                    }
                }
            };
            let slot = range.start + i;
            let bits = msg.size_bits();
            scratch.record_sent(bits);
            match sh.net.transport.fate(slot, round) {
                Fate::Deliver => {
                    let cell = &mut cur[slot - cur_base];
                    assert!(
                        cell.is_none(),
                        "node {from} sent two messages to {to} in one round (the LOCAL \
                         model allows one message per neighbor per round)"
                    );
                    *cell = Some(msg);
                    *occ += 1;
                }
                Fate::Drop => {
                    scratch.fault_dropped_msgs += 1;
                    scratch.fault_dropped_bits += bits;
                }
                Fate::Delay(k) => {
                    scratch.delayed.push((round + 1 + k.max(1) as usize, slot as u32, msg));
                }
            }
        }
    }

    /// [`Action::Broadcast`]: clone the message into every out-slot, no
    /// intermediate `Vec`, no addressing. Under a non-perfect transport
    /// each copy's fate is consulted individually, exactly as if the node
    /// had sent the copies one by one.
    #[allow(clippy::too_many_arguments)]
    fn post_broadcast<M: Message>(
        sh: &Shared<'_, '_>,
        from: Vertex,
        msg: M,
        round: usize,
        cur: &mut [Option<M>],
        cur_base: usize,
        occ: &mut u32,
        scratch: &mut Scratch<M>,
    ) {
        let range = sh.offsets[from]..sh.offsets[from + 1];
        if sh.faulty {
            if *occ > 0 {
                for s in range.clone() {
                    cur[s - cur_base] = None;
                }
            }
            *occ = 0;
            let bits = msg.size_bits();
            for s in range {
                scratch.record_sent(bits);
                match sh.net.transport.fate(s, round) {
                    Fate::Deliver => {
                        cur[s - cur_base] = Some(msg.clone());
                        *occ += 1;
                    }
                    Fate::Drop => {
                        scratch.fault_dropped_msgs += 1;
                        scratch.fault_dropped_bits += bits;
                    }
                    Fate::Delay(k) => {
                        scratch.delayed.push((
                            round + 1 + k.max(1) as usize,
                            s as u32,
                            msg.clone(),
                        ));
                    }
                }
            }
            return;
        }
        *occ = range.len() as u32; // every slot is overwritten, no clear pass
        let bits = msg.size_bits();
        for s in range {
            scratch.record_sent(bits);
            scratch.record_push(sh.mirror[s], s);
            cur[s - cur_base] = Some(msg.clone());
        }
    }

    /// Steps every vertex of `seg` through round `round`.
    ///
    /// `nodes`/`cur` are the windows of the state vector and write arena
    /// covering exactly the chunk's vertex range — each worker owns its
    /// windows exclusively, which is what makes the parallel schedule safe
    /// and deterministic by construction. `push` is the segment's window of
    /// the round's sorted push list (`None` = scan delivery); a cursor walks
    /// it in lockstep with the segment's ascending vertices, skipping
    /// entries addressed to halted (non-stepped) receivers.
    #[allow(clippy::too_many_arguments)]
    fn step_segment<P: Protocol>(
        sh: &Shared<'_, '_>,
        seg: &[Vertex],
        round: usize,
        nodes: &mut [P],
        node_base: usize,
        cur: &mut [Option<P::Msg>],
        cur_base: usize,
        occ_cur: &mut [u32],
        mut prev: Prev<'_, P::Msg>,
        scratch: &mut Scratch<P::Msg>,
        push: Option<&[u64]>,
    ) {
        let mut pos = 0usize;
        for &v in seg {
            match push {
                None => fill_inbox(sh, v, round, &mut prev, scratch),
                Some(list) => {
                    while pos < list.len() && ((list[pos] >> 32) as usize) < sh.offsets[v] {
                        pos += 1; // entries for receivers that halted mid-run
                    }
                    let start = pos;
                    while pos < list.len() && ((list[pos] >> 32) as usize) < sh.offsets[v + 1] {
                        pos += 1;
                    }
                    fill_inbox_from_push(sh, &list[start..pos], &mut prev, scratch);
                }
            }
            let ctx = sh.net.ctx_for(v, round);
            let inbox = std::mem::take(&mut scratch.inbox);
            let action = nodes[v - node_base].round(&ctx, &inbox);
            scratch.inbox = inbox;
            let occ = &mut occ_cur[v - node_base];
            match action {
                Action::Continue(out) => post_list(sh, v, out, round, cur, cur_base, occ, scratch),
                Action::Broadcast(msg) => {
                    post_broadcast(sh, v, msg, round, cur, cur_base, occ, scratch)
                }
                Action::Halt(out) => {
                    post_list(sh, v, out, round, cur, cur_base, occ, scratch);
                    scratch.halts.push(v);
                }
            }
        }
    }

    /// How a round's active nodes get stepped. The two implementations let
    /// the `Send` bounds of parallel stepping live only on the threaded
    /// entry points: the shared engine below is bound-free and identical
    /// for both (so there is no sequential code path to drift from).
    pub(super) trait Stepper<P: Protocol> {
        #[allow(clippy::too_many_arguments)]
        fn step(
            &self,
            sh: &Shared<'_, '_>,
            active: &[Vertex],
            round: usize,
            workers: usize,
            nodes: &mut [P],
            cur: &mut [Option<P::Msg>],
            occ_cur: &mut [u32],
            prev: &mut [Option<P::Msg>],
            occ_prev: &mut [u32],
            scratches: &mut [Scratch<P::Msg>],
            push: Option<&[u64]>,
            dense: bool,
        );
    }

    /// Always steps on the calling thread. Sparse rounds move messages out
    /// of the previous arena (the take keeps the arena self-cleaning, so a
    /// quiet steady state does no arena work at all); dense rounds fetch by
    /// clone exactly like the parallel schedule — skipping the per-message
    /// write-back and occupancy decrement is cheaper than the sequential
    /// clear pass it trades for when most slots are full.
    pub(super) struct SeqStepper;

    impl<P: Protocol> Stepper<P> for SeqStepper {
        fn step(
            &self,
            sh: &Shared<'_, '_>,
            active: &[Vertex],
            round: usize,
            _workers: usize,
            nodes: &mut [P],
            cur: &mut [Option<P::Msg>],
            occ_cur: &mut [u32],
            prev: &mut [Option<P::Msg>],
            occ_prev: &mut [u32],
            scratches: &mut [Scratch<P::Msg>],
            push: Option<&[u64]>,
            dense: bool,
        ) {
            let prev_view = if dense {
                Prev::Shared { slots: prev, occ: occ_prev }
            } else {
                Prev::Excl { slots: prev, occ: occ_prev }
            };
            step_segment(
                sh,
                active,
                round,
                nodes,
                0,
                cur,
                0,
                occ_cur,
                prev_view,
                &mut scratches[0],
                push,
            );
        }
    }

    /// Splits rounds with enough active nodes across worker threads;
    /// falls back to the sequential step below the threshold.
    #[cfg(feature = "parallel")]
    pub(super) struct ParStepper;

    #[cfg(feature = "parallel")]
    impl<P> Stepper<P> for ParStepper
    where
        P: Protocol + Send,
        P::Msg: Send + Sync,
    {
        fn step(
            &self,
            sh: &Shared<'_, '_>,
            active: &[Vertex],
            round: usize,
            workers: usize,
            nodes: &mut [P],
            cur: &mut [Option<P::Msg>],
            occ_cur: &mut [u32],
            prev: &mut [Option<P::Msg>],
            occ_prev: &mut [u32],
            scratches: &mut [Scratch<P::Msg>],
            push: Option<&[u64]>,
            dense: bool,
        ) {
            if workers == 1 {
                SeqStepper.step(
                    sh, active, round, 1, nodes, cur, occ_cur, prev, occ_prev, scratches, push,
                    dense,
                );
            } else {
                parallel::step_round(
                    sh, active, round, workers, nodes, cur, occ_cur, &*prev, &*occ_prev, scratches,
                    push,
                );
            }
        }
    }

    /// The per-round budget of push-list entries for `live_slots` live
    /// in-slots: a round whose sent count exceeds it cannot qualify for push
    /// delivery, so recording past it is pointless ([`Delivery::Push`]
    /// records unconditionally, [`Delivery::Scan`] never).
    fn push_cap(delivery: Delivery, live_slots: usize) -> usize {
        match delivery {
            Delivery::Scan => 0,
            Delivery::Push => usize::MAX,
            Delivery::Adaptive => live_slots / PUSH_COST_FACTOR,
        }
    }

    /// Digit width of the push-list radix sort.
    const RADIX_BITS: u32 = 11;

    /// Sorts the round's push list ascending by receiver-side slot (the
    /// high 32 bits of each packed entry; receiver slots are distinct, so
    /// any sort yields the same canonical order). A stable LSD radix sort
    /// over the key bits with a reused scratch buffer is ~2× a comparison
    /// sort at the mid-density round sizes where the scan/push choice is
    /// closest.
    fn sort_push_list(list: &mut Vec<u64>, scratch: &mut Vec<u64>, max_slot: u32) {
        if list.len() <= 64 {
            list.sort_unstable();
            return;
        }
        let key_bits = 32 - max_slot.leading_zeros();
        scratch.clear();
        scratch.resize(list.len(), 0);
        let mut shift = 32;
        let end = 32 + key_bits;
        while shift < end {
            let mut counts = [0u32; 1 << RADIX_BITS];
            for &x in list.iter() {
                counts[((x >> shift) as usize) & ((1 << RADIX_BITS) - 1)] += 1;
            }
            let mut sum = 0u32;
            for c in counts.iter_mut() {
                let bucket = *c;
                *c = sum;
                sum += bucket;
            }
            for &x in list.iter() {
                let d = ((x >> shift) as usize) & ((1 << RADIX_BITS) - 1);
                scratch[counts[d] as usize] = x;
                counts[d] += 1;
            }
            std::mem::swap(list, scratch);
            shift += RADIX_BITS;
        }
    }

    /// The engine shared by the sequential and threaded runners.
    ///
    /// A non-perfect transport forces the deterministic fault path:
    /// sequential stepping, scan delivery, take-semantics fetches. Take
    /// fetches keep the arenas drained, which is what makes late injection
    /// sound — a deferred message is parked in a heap keyed by
    /// `(arrival, seq)` and injected into the read arena at the top of its
    /// arrival round, postponed further if a fresher message occupies its
    /// slot, dropped if its receiver has halted.
    pub(super) fn run<P, F, S>(
        net: &Network<'_>,
        mut make: F,
        threads: usize,
        stepper: S,
    ) -> Result<TracedRun<P::Output>, RunError>
    where
        P: Protocol,
        F: FnMut(&NodeCtx<'_>) -> P,
        S: Stepper<P>,
    {
        let n = net.graph.n();
        let offsets = net.graph.slot_offsets();
        let mirror = net.graph.mirror_slots();
        let slot_count = net.graph.slot_count();
        let faulty = !net.transport.is_perfect();
        let threads = if faulty { 1 } else { threads };
        let delivery = if faulty { Delivery::Scan } else { net.delivery };

        let mut halt_round: Vec<usize> = vec![LIVE; n];
        let mut active: Vec<Vertex> = (0..n).collect();
        // In-slots owned by still-active receivers: the scan cost the
        // adaptive delivery choice weighs a push round against.
        let mut live_slots = slot_count;
        let mut arena_prev: Vec<Option<P::Msg>> = (0..slot_count).map(|_| None).collect();
        let mut arena_cur: Vec<Option<P::Msg>> = (0..slot_count).map(|_| None).collect();
        // Occupancy counts, one per vertex per arena (swapped together):
        // exactly how many of the vertex's slots in that arena are `Some`.
        let mut occ_prev: Vec<u32> = vec![0; n];
        let mut occ_cur: Vec<u32> = vec![0; n];
        let mut scratches: Vec<Scratch<P::Msg>> =
            (0..threads.max(1)).map(|_| Scratch::new()).collect();
        // Reusable merge + radix-scratch buffers for the sorted push list.
        let mut push_list: Vec<u64> = Vec::new();
        let mut push_scratch: Vec<u64> = Vec::new();
        // Transport-deferred messages awaiting their arrival round.
        let mut pending: BinaryHeap<Reverse<Pending<P::Msg>>> = BinaryHeap::new();
        let mut pending_seq = 0u64;
        let mut stats = RunStats::zero();
        let mut profile: Vec<RoundLoad> = Vec::new();
        let mut trace: Vec<RoundTrace> = Vec::new();

        // Round 0: build the nodes and deliver their initial sends into the
        // current arena (always sequential — `make` is FnMut).
        let mut nodes: Vec<P> = Vec::with_capacity(n);
        {
            let sh = Shared { net, offsets, mirror, halt_round: &halt_round, faulty };
            scratches[0].reset_round(push_cap(delivery, live_slots));
            for (v, occ) in occ_cur.iter_mut().enumerate() {
                let ctx = net.ctx_for(v, 0);
                let mut p = make(&ctx);
                let out = p.start(&ctx);
                post_list(&sh, v, out, 0, &mut arena_cur, 0, occ, &mut scratches[0]);
                nodes.push(p);
            }
        }
        let (mut sent_prev_msgs, mut sent_prev_bits) =
            (scratches[0].sent_msgs, scratches[0].sent_bits);
        stats.messages += sent_prev_msgs;
        stats.total_message_bits += sent_prev_bits;
        let (mut fault_prev_msgs, mut fault_prev_bits) =
            (scratches[0].fault_dropped_msgs, scratches[0].fault_dropped_bits);
        stats.transport_dropped += fault_prev_msgs;
        for (arrival, slot, msg) in scratches[0].delayed.drain(..) {
            let from = offsets.partition_point(|&o| o <= slot as usize) - 1;
            pending.push(Reverse(Pending { arrival, seq: pending_seq, slot, from, msg }));
            pending_seq += 1;
        }
        let mut recorded_prev = push_cap(delivery, live_slots) > 0;

        let mut round = 0usize;
        while !active.is_empty() {
            round += 1;
            if round > net.round_cap {
                stats.rounds = round - 1;
                return Err(RunError::RoundCapExceeded {
                    cap: net.round_cap,
                    live: active.len(),
                    stats,
                });
            }
            let live = active.len();
            stats.node_rounds += live;
            std::mem::swap(&mut arena_prev, &mut arena_cur);
            std::mem::swap(&mut occ_prev, &mut occ_cur);

            // Inject transport-deferred messages due this round into the
            // read arena (before any node steps, so they are observationally
            // ordinary — just late). An occupied slot postpones the laggard
            // one more round; a halted receiver drops it, exactly like any
            // send toward a halted node.
            while pending.peek().is_some_and(|Reverse(p)| p.arrival <= round) {
                // INVARIANT: extraction follows a successful peek on the same source.
                let Reverse(p) = pending.pop().expect("peeked entry");
                let slot = p.slot as usize;
                let to = net.flat_neighbors[slot];
                if halt_round[to] != LIVE {
                    continue;
                }
                if arena_prev[slot].is_some() {
                    pending.push(Reverse(Pending { arrival: round + 1, ..p }));
                    continue;
                }
                occ_prev[p.from] += 1;
                arena_prev[slot] = Some(p.msg);
            }

            // Delivery choice for the round, from the previous step phase's
            // sent count. Push needs last round's records: a worker that
            // overflowed its recording cap proves the round was too dense
            // (the arithmetic check then also fails), and a round after a
            // dense round skipped recording entirely (hysteresis below).
            let sparse = sent_prev_msgs * PUSH_COST_FACTOR < live_slots;
            let use_push = match delivery {
                Delivery::Scan => false,
                Delivery::Push => true,
                Delivery::Adaptive => {
                    sparse && recorded_prev && !scratches.iter().any(|s| s.push_overflow)
                }
            };
            let push = if use_push {
                push_list.clear();
                for s in scratches.iter() {
                    push_list.extend_from_slice(&s.pushed);
                }
                // Ascending receiver-side slots = receivers in vertex order,
                // senders in neighbor order within each receiver — the exact
                // delivery order of the scan sweep, whatever the chunking.
                sort_push_list(&mut push_list, &mut push_scratch, slot_count.max(2) as u32 - 1);
                Some(push_list.as_slice())
            } else {
                None
            };
            // Hysteresis: a dense finished round predicts a dense next
            // round, so its successor skips recording — dense phases pay
            // nothing for the adaptive machinery; at a dense→sparse phase
            // boundary one round scans before push kicks in.
            let cap = if sparse { push_cap(delivery, live_slots) } else { 0 };
            let cap = if delivery == Delivery::Push { usize::MAX } else { cap };
            recorded_prev = cap > 0;
            for s in scratches.iter_mut() {
                s.reset_round(cap);
            }

            let workers = if threads > 1 && live >= 2 * super::MIN_ACTIVE_PER_THREAD {
                threads.min(live / super::MIN_ACTIVE_PER_THREAD).max(1)
            } else {
                1
            };
            // A round too dense for push delivery is also a round where
            // clone-fetch beats take-fetch (most slots are due a fetch, so
            // the write-backs outweigh the clear pass they save). Faulty
            // runs always take-fetch: injection relies on drained arenas.
            let dense = !faulty && !use_push && !sparse;
            let sh = Shared { net, offsets, mirror, halt_round: &halt_round, faulty };
            stepper.step(
                &sh,
                &active,
                round,
                workers,
                &mut nodes,
                &mut arena_cur,
                &mut occ_cur,
                &mut arena_prev,
                &mut occ_prev,
                &mut scratches,
                push,
                dense,
            );
            trace.push(RoundTrace {
                delivery: if use_push { DeliveryChoice::Push } else { DeliveryChoice::Scan },
                workers,
            });

            // Merge the round, in fixed chunk order (all sums, so the totals
            // equal the sequential engine's regardless of the split).
            let (mut delivered_msgs, mut delivered_bits) = (0usize, 0usize);
            let (mut sent_msgs, mut sent_bits) = (0usize, 0usize);
            let (mut fault_msgs, mut fault_bits) = (0usize, 0usize);
            let mut any_halt = false;
            for s in scratches.iter_mut() {
                delivered_msgs += s.delivered_msgs;
                delivered_bits += s.delivered_bits;
                sent_msgs += s.sent_msgs;
                sent_bits += s.sent_bits;
                fault_msgs += s.fault_dropped_msgs;
                fault_bits += s.fault_dropped_bits;
                stats.max_message_bits = stats.max_message_bits.max(s.max_bits);
                for &v in &s.halts {
                    halt_round[v] = round;
                    any_halt = true;
                }
            }
            stats.messages += sent_msgs;
            stats.total_message_bits += sent_bits;
            stats.transport_dropped += fault_msgs;
            for (arrival, slot, msg) in scratches[0].delayed.drain(..) {
                let from = offsets.partition_point(|&o| o <= slot as usize) - 1;
                pending.push(Reverse(Pending { arrival, seq: pending_seq, slot, from, msg }));
                pending_seq += 1;
            }
            if any_halt {
                active.retain(|&v| halt_round[v] == LIVE);
                live_slots = active.iter().map(|&v| offsets[v + 1] - offsets[v]).sum();
            }
            profile.push(RoundLoad {
                messages: delivered_msgs,
                bits: delivered_bits,
                live_nodes: live,
                sent_messages: sent_prev_msgs,
                sent_bits: sent_prev_bits,
                transport_dropped: fault_prev_msgs,
                transport_dropped_bits: fault_prev_bits,
            });
            (sent_prev_msgs, sent_prev_bits) = (sent_msgs, sent_bits);
            (fault_prev_msgs, fault_prev_bits) = (fault_msgs, fault_bits);
        }
        stats.rounds = round;

        let mut outputs = Vec::with_capacity(n);
        for (v, p) in nodes.into_iter().enumerate() {
            let ctx = net.ctx_for(v, round);
            outputs.push(p.finish(&ctx));
        }
        Ok((Run { outputs, stats }, profile, trace))
    }

    /// Deterministic parallel stepping: contiguous chunks of the active
    /// worklist, disjoint `&mut` windows per worker, shared read-only view
    /// of the previous arena.
    #[cfg(feature = "parallel")]
    mod parallel {
        use super::{step_segment, Prev, Protocol, Scratch, Shared, Vertex};

        #[allow(clippy::too_many_arguments)]
        pub(super) fn step_round<P>(
            sh: &Shared<'_, '_>,
            active: &[Vertex],
            round: usize,
            workers: usize,
            nodes: &mut [P],
            arena_cur: &mut [Option<P::Msg>],
            occ_cur: &mut [u32],
            arena_prev: &[Option<P::Msg>],
            occ_prev: &[u32],
            scratches: &mut [Scratch<P::Msg>],
            push: Option<&[u64]>,
        ) where
            P: Protocol + Send,
            P::Msg: Send + Sync,
        {
            // Carve the active list into `workers` contiguous segments;
            // because it is sorted and duplicate-free, segments own disjoint
            // vertex intervals, which lets the state vector and write arena
            // be split into disjoint `&mut` windows with safe code only.
            struct Job<'j, P: Protocol> {
                seg: &'j [Vertex],
                nodes: &'j mut [P],
                node_base: usize,
                cur: &'j mut [Option<P::Msg>],
                cur_base: usize,
                occ_cur: &'j mut [u32],
                scratch: &'j mut Scratch<P::Msg>,
                /// This segment's window of the sorted push list (entries in
                /// the segment's slot interval), `None` under scan delivery.
                push: Option<&'j [u64]>,
            }

            let mut jobs: Vec<Job<'_, P>> = Vec::with_capacity(workers);
            let mut nodes_rest = nodes;
            let mut nodes_off = 0usize;
            let mut cur_rest = arena_cur;
            let mut cur_off = 0usize;
            let mut occ_rest = occ_cur;
            let mut occ_off = 0usize;
            let mut scratch_rest = scratches;
            let per = active.len().div_ceil(workers);
            for seg in active.chunks(per) {
                let v_lo = seg[0];
                let v_hi = seg[seg.len() - 1];
                let (_, rest) = nodes_rest.split_at_mut(v_lo - nodes_off);
                let (mine, rest) = rest.split_at_mut(v_hi + 1 - v_lo);
                nodes_rest = rest;
                nodes_off = v_hi + 1;
                let (slot_lo, slot_hi) = (sh.offsets[v_lo], sh.offsets[v_hi + 1]);
                let (_, rest) = cur_rest.split_at_mut(slot_lo - cur_off);
                let (mine_cur, rest) = rest.split_at_mut(slot_hi - slot_lo);
                cur_rest = rest;
                cur_off = slot_hi;
                let (_, rest) = occ_rest.split_at_mut(v_lo - occ_off);
                let (mine_occ, rest) = rest.split_at_mut(v_hi + 1 - v_lo);
                occ_rest = rest;
                occ_off = v_hi + 1;
                let (scratch, rest) = std::mem::take(&mut scratch_rest).split_at_mut(1);
                scratch_rest = rest;
                // The push list is sorted by (receiver-side) slot, so the
                // segment's entries form one contiguous window.
                let push_window = push.map(|list| {
                    let lo = list.partition_point(|&e| ((e >> 32) as usize) < slot_lo);
                    let hi = list.partition_point(|&e| ((e >> 32) as usize) < slot_hi);
                    &list[lo..hi]
                });
                jobs.push(Job {
                    seg,
                    nodes: mine,
                    node_base: v_lo,
                    cur: mine_cur,
                    cur_base: slot_lo,
                    occ_cur: mine_occ,
                    scratch: &mut scratch[0],
                    push: push_window,
                });
            }

            std::thread::scope(|scope| {
                let mut jobs = jobs.into_iter();
                // INVARIANT: the shard plan always yields at least one job for a non-empty network.
                let first = jobs.next().expect("at least one job");
                for job in jobs {
                    scope.spawn(move || {
                        step_segment(
                            sh,
                            job.seg,
                            round,
                            job.nodes,
                            job.node_base,
                            job.cur,
                            job.cur_base,
                            job.occ_cur,
                            Prev::Shared { slots: arena_prev, occ: occ_prev },
                            job.scratch,
                            job.push,
                        );
                    });
                }
                // The caller's thread works chunk 0 instead of idling.
                step_segment(
                    sh,
                    first.seg,
                    round,
                    first.nodes,
                    first.node_base,
                    first.cur,
                    first.cur_base,
                    first.occ_cur,
                    Prev::Shared { slots: arena_prev, occ: occ_prev },
                    first.scratch,
                    first.push,
                );
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::FaultyTransport;
    use deco_graph::generators;

    /// Flood the maximum identifier for `radius` rounds.
    struct FloodMax {
        radius: usize,
        best: u64,
    }

    impl Protocol for FloodMax {
        type Msg = u64;
        type Output = u64;

        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            self.best = ctx.ident;
            ctx.broadcast(self.best)
        }

        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
            for &(_, v) in inbox {
                self.best = self.best.max(v);
            }
            if ctx.round >= self.radius {
                Action::halt()
            } else {
                Action::Broadcast(self.best)
            }
        }

        fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
            self.best
        }
    }

    #[test]
    fn flood_on_path_reaches_radius() {
        let g = generators::path(10);
        let net = Network::new(&g);
        let run = net.run(|_| FloodMax { radius: 3, best: 0 });
        assert_eq!(run.stats.rounds, 3);
        // Vertex 0 can have heard from at most distance 3.
        assert_eq!(run.outputs[0], 4);
        // Vertex 9 has the max already.
        assert_eq!(run.outputs[9], 10);
    }

    #[test]
    fn flood_covers_whole_graph() {
        let g = generators::cycle(8);
        let run = Network::new(&g).run(|_| FloodMax { radius: 4, best: 0 });
        assert!(run.outputs.iter().all(|&b| b == 8));
    }

    #[test]
    fn message_accounting() {
        let g = generators::star(4); // 3 edges
        let run = Network::new(&g).run(|_| FloodMax { radius: 1, best: 0 });
        // start: every vertex broadcasts once over each incident edge;
        // in round 1 every node halts without sending.
        assert_eq!(run.stats.messages, 2 * g.m());
        assert!(run.stats.max_message_bits >= 3); // ident 4 needs 3 bits
        assert_eq!(run.stats.rounds, 1);
    }

    #[test]
    fn deterministic_runs() {
        let g = generators::random_graph(30, 60, 5);
        let a = Network::new(&g).run(|_| FloodMax { radius: 2, best: 0 });
        let b = Network::new(&g).run(|_| FloodMax { radius: 2, best: 0 });
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }

    struct NeverHalts;
    impl Protocol for NeverHalts {
        type Msg = u64;
        type Output = ();
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            ctx.broadcast(1)
        }
        fn round(&mut self, _ctx: &NodeCtx<'_>, _inbox: &[(Vertex, u64)]) -> Action<u64> {
            Action::Broadcast(1)
        }
        fn finish(self, _ctx: &NodeCtx<'_>) {}
    }

    #[test]
    #[should_panic(expected = "round cap")]
    fn round_cap_triggers() {
        let g = generators::path(3);
        let _ = Network::new(&g).with_round_cap(10).run(|_| NeverHalts);
    }

    struct ImmediateHalt;
    impl Protocol for ImmediateHalt {
        type Msg = ();
        type Output = u64;
        fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, ())> {
            Vec::new()
        }
        fn round(&mut self, _ctx: &NodeCtx<'_>, _inbox: &[(Vertex, ())]) -> Action<()> {
            Action::halt()
        }
        fn finish(self, ctx: &NodeCtx<'_>) -> u64 {
            ctx.ident
        }
    }

    #[test]
    fn silent_protocol_takes_one_round() {
        let g = generators::path(4);
        let run = Network::new(&g).run(|_| ImmediateHalt);
        assert_eq!(run.stats.rounds, 1);
        assert_eq!(run.stats.messages, 0);
        assert_eq!(run.outputs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn ctx_ident_lookup() {
        let g = generators::shuffle_idents(&generators::path(5), 9);
        struct Check;
        impl Protocol for Check {
            type Msg = ();
            type Output = ();
            fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, ())> {
                Vec::new()
            }
            fn round(&mut self, ctx: &NodeCtx<'_>, _inbox: &[(Vertex, ())]) -> Action<()> {
                for &u in ctx.neighbors {
                    let _ = ctx.ident_of(u);
                }
                Action::halt()
            }
            fn finish(self, _ctx: &NodeCtx<'_>) {}
        }
        let run = Network::new(&g).run(|_| Check);
        assert_eq!(run.stats.rounds, 1);
    }

    #[test]
    fn run_map_keeps_stats() {
        let g = generators::path(3);
        let run = Network::new(&g).run(|_| ImmediateHalt).map(|x| x * 10);
        assert_eq!(run.outputs, vec![10, 20, 30]);
        assert_eq!(run.stats.rounds, 1);
    }

    #[test]
    fn profile_accounts_per_round() {
        let g = generators::cycle(6);
        let (run, profile) = Network::new(&g).run_profiled(|_| FloodMax { radius: 2, best: 0 });
        assert_eq!(profile.len(), run.stats.rounds);
        // Round 1 delivers the start broadcasts (2 per vertex on a cycle);
        // round 2 the re-broadcasts; all 6 nodes live throughout.
        assert_eq!(profile[0].messages, 12);
        assert_eq!(profile[1].messages, 12);
        assert!(profile.iter().all(|r| r.live_nodes == 6));
        let total: usize = profile.iter().map(|r| r.messages).sum();
        // The profile counts *delivered* messages; sends into halted nodes
        // (none here) would be dropped, so delivered <= sent.
        assert_eq!(total, run.stats.messages);
        let bits: usize = profile.iter().map(|r| r.bits).sum();
        assert!(bits <= run.stats.total_message_bits);
        // Per-entry sent accounting: every delivery was sent one phase
        // earlier, and nothing was dropped on this halt-free run.
        assert!(profile.iter().all(|r| r.messages == r.sent_messages));
        assert!(profile.iter().all(|r| r.dropped_messages() == 0));
    }

    /// Nodes halt at staggered times; messages sent toward halted receivers
    /// must be dropped (delivered < sent) and stale slots must never be
    /// redelivered.
    struct StaggerHalt;
    impl Protocol for StaggerHalt {
        type Msg = u64;
        type Output = u64;
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            ctx.broadcast(ctx.ident)
        }
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
            // Vertex v halts silently in round v+1; everyone else keeps
            // broadcasting, so sends toward already-halted nodes pile up.
            let wave = 100 * ctx.round as u64 + inbox.len() as u64;
            if ctx.round > ctx.vertex {
                Action::halt()
            } else {
                Action::Broadcast(wave)
            }
        }
        fn finish(self, ctx: &NodeCtx<'_>) -> u64 {
            ctx.ident
        }
    }

    #[test]
    fn staggered_halts_drop_messages_to_halted() {
        let g = generators::path(6);
        let (run, profile) = Network::new(&g).run_profiled(|_| StaggerHalt);
        // Vertex v halts in round v+1, so 6 rounds total.
        assert_eq!(run.stats.rounds, 6);
        let delivered: usize = profile.iter().map(|r| r.messages).sum();
        assert!(delivered < run.stats.messages, "some sends must be dropped");
        for r in &profile {
            assert!(r.messages <= r.sent_messages, "delivered > sent in {r:?}");
        }
        let dropped: usize = profile.iter().map(|r| r.dropped_messages()).sum();
        // Halts are silent here, so every send is due in some profiled
        // round: the sent/delivered/dropped ledger closes exactly.
        assert_eq!(delivered + dropped, run.stats.messages);
        // Live-node counts decay one per round: 6, 5, 4, ...
        let lives: Vec<usize> = profile.iter().map(|r| r.live_nodes).collect();
        assert_eq!(lives, vec![6, 5, 4, 3, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn posting_to_non_neighbor_panics() {
        let g = generators::path(3);
        struct BadSend;
        impl Protocol for BadSend {
            type Msg = u64;
            type Output = ();
            fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
                if ctx.vertex == 0 {
                    vec![(2, 7)] // not adjacent on a path
                } else {
                    Vec::new()
                }
            }
            fn round(&mut self, _: &NodeCtx<'_>, _: &[(Vertex, u64)]) -> Action<u64> {
                Action::halt()
            }
            fn finish(self, _: &NodeCtx<'_>) {}
        }
        let _ = Network::new(&g).run(|_| BadSend);
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn duplicate_send_panics() {
        let g = generators::path(3);
        struct DoubleSend;
        impl Protocol for DoubleSend {
            type Msg = u64;
            type Output = ();
            fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
                if ctx.vertex == 0 {
                    vec![(1, 7), (1, 8)]
                } else {
                    Vec::new()
                }
            }
            fn round(&mut self, _: &NodeCtx<'_>, _: &[(Vertex, u64)]) -> Action<u64> {
                Action::halt()
            }
            fn finish(self, _: &NodeCtx<'_>) {}
        }
        let _ = Network::new(&g).run(|_| DoubleSend);
    }

    /// Out-of-order (reverse-sorted) outboxes still land correctly via the
    /// binary-search fallback.
    #[test]
    fn out_of_order_sends_are_delivered() {
        let g = generators::star(5);
        struct ReverseSendState(usize);
        impl Protocol for ReverseSendState {
            type Msg = u64;
            type Output = usize;
            fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
                ctx.neighbors.iter().rev().map(|&u| (u, u as u64)).collect()
            }
            fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
                for w in inbox.windows(2) {
                    assert!(w[0].0 < w[1].0, "inbox must stay sender-sorted");
                }
                for &(_, m) in inbox {
                    // Every message carries its addressee's index.
                    assert_eq!(m, ctx.vertex as u64, "message landed at the wrong receiver");
                }
                self.0 = inbox.len();
                Action::halt()
            }
            fn finish(self, _: &NodeCtx<'_>) -> usize {
                self.0
            }
        }
        let run = Network::new(&g).run(|_| ReverseSendState(0));
        // The center received one message from each of the 4 leaves.
        assert_eq!(run.outputs[0], 4);
        assert!(run.outputs[1..].iter().all(|&c| c == 1));
    }

    #[test]
    fn delivery_modes_bit_identical() {
        // StaggerHalt exercises halts mid-run (push entries addressed to
        // halted receivers must be dropped) on top of dense broadcasts.
        let g = generators::random_graph(500, 1800, 21);
        let scan = Network::new(&g).with_delivery(Delivery::Scan).run_profiled(|_| StaggerHalt);
        for mode in [Delivery::Push, Delivery::Adaptive] {
            let other = Network::new(&g).with_delivery(mode).run_profiled(|_| StaggerHalt);
            assert_eq!(scan.0.outputs, other.0.outputs, "{mode:?} outputs diverged");
            assert_eq!(scan.0.stats, other.0.stats, "{mode:?} stats diverged");
            assert_eq!(scan.1, other.1, "{mode:?} profile diverged");
        }
    }

    /// Mostly-quiet traffic: only vertex 0 speaks after the first round —
    /// the sparse-tail shape adaptive delivery exists for.
    struct SparseTail {
        rounds: usize,
        heard: u64,
    }

    impl Protocol for SparseTail {
        type Msg = u64;
        type Output = u64;
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            ctx.broadcast(ctx.ident)
        }
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
            for &(_, m) in inbox {
                self.heard = self.heard.wrapping_mul(31).wrapping_add(m);
            }
            if ctx.round >= self.rounds {
                Action::halt()
            } else if ctx.vertex == 0 {
                Action::Broadcast(self.heard)
            } else {
                Action::idle()
            }
        }
        fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
            self.heard
        }
    }

    #[test]
    fn adaptive_chooses_push_on_sparse_rounds_and_scan_on_dense() {
        let g = generators::random_bounded_degree(300, 6, 77);
        let mk = |_: &NodeCtx<'_>| SparseTail { rounds: 6, heard: 0 };
        let (_, _, trace) = Network::new(&g).with_delivery(Delivery::Adaptive).run_traced(mk);
        // Round 1 delivers the dense start broadcasts -> scan; the tail
        // rounds carry <= deg(0) messages -> push.
        assert_eq!(trace[0].delivery, DeliveryChoice::Scan);
        assert!(
            trace[2..].iter().all(|t| t.delivery == DeliveryChoice::Push),
            "sparse tail must use push delivery: {trace:?}"
        );
        // Pinned modes trace as themselves and agree bit-for-bit.
        let scan = Network::new(&g).with_delivery(Delivery::Scan).run_traced(mk);
        let push = Network::new(&g).with_delivery(Delivery::Push).run_traced(mk);
        assert!(scan.2.iter().all(|t| t.delivery == DeliveryChoice::Scan));
        assert!(push.2.iter().all(|t| t.delivery == DeliveryChoice::Push));
        assert_eq!(scan.0.outputs, push.0.outputs);
        assert_eq!(scan.0.stats, push.0.stats);
        assert_eq!(scan.1, push.1);
    }

    #[test]
    fn traced_naive_engine_has_empty_trace() {
        let g = generators::path(8);
        let (run, profile, trace) = Network::new(&g)
            .with_engine(Engine::Naive)
            .run_traced(|_| FloodMax { radius: 2, best: 0 });
        assert_eq!(profile.len(), run.stats.rounds);
        assert!(trace.is_empty());
    }

    /// Staggered halts with a bounded horizon: big enough graphs stay
    /// parallel-stepped, every round still mixes halts into the push list.
    struct ModHalt;
    impl Protocol for ModHalt {
        type Msg = u64;
        type Output = u64;
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            ctx.broadcast(ctx.ident)
        }
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
            let sum: u64 = inbox.iter().map(|&(s, m)| m ^ s as u64).sum();
            if ctx.round > ctx.vertex % 13 {
                Action::Halt(ctx.broadcast(sum))
            } else {
                Action::Broadcast(sum % 4093)
            }
        }
        fn finish(self, ctx: &NodeCtx<'_>) -> u64 {
            ctx.ident
        }
    }

    #[test]
    fn threaded_push_delivery_matches_sequential() {
        let g = generators::random_graph(4000, 9000, 5);
        for mode in [Delivery::Push, Delivery::Adaptive] {
            let mk = |_: &NodeCtx<'_>| ModHalt;
            let seq = Network::new(&g).with_delivery(mode).run_profiled(mk);
            for threads in [2usize, 8] {
                let par = Network::new(&g)
                    .with_delivery(mode)
                    .with_threads(threads)
                    .run_profiled_threaded(mk);
                assert_eq!(seq.0.outputs, par.0.outputs, "{mode:?} threads={threads}");
                assert_eq!(seq.0.stats, par.0.stats, "{mode:?} threads={threads}");
                assert_eq!(seq.1, par.1, "{mode:?} threads={threads}");
            }
        }
    }

    #[test]
    fn threaded_run_matches_sequential() {
        let g = generators::random_graph(3000, 9000, 12);
        let seq = Network::new(&g).run_profiled(|_| FloodMax { radius: 4, best: 0 });
        for threads in [1, 2, 3, 8] {
            let par = Network::new(&g)
                .with_threads(threads)
                .run_profiled_threaded(|_| FloodMax { radius: 4, best: 0 });
            assert_eq!(seq.0.outputs, par.0.outputs, "threads={threads}");
            assert_eq!(seq.0.stats, par.0.stats, "threads={threads}");
            assert_eq!(seq.1, par.1, "threads={threads}");
        }
    }

    #[test]
    fn env_parsing_falls_back_with_warning() {
        assert!(parse_threads(None).0 >= 1);
        assert_eq!(parse_threads(Some("4")), (4, None));
        for bad in ["banana", "0", "-3", "1.5"] {
            let (t, warn) = parse_threads(Some(bad));
            assert!(t >= 1, "fallback must be usable for {bad:?}");
            assert!(warn.expect("malformed value must warn").contains("DECO_THREADS"));
        }
        assert_eq!(parse_delivery(None), (Delivery::Adaptive, None));
        assert_eq!(parse_delivery(Some("scan")), (Delivery::Scan, None));
        assert_eq!(parse_delivery(Some("push")), (Delivery::Push, None));
        assert_eq!(parse_delivery(Some("adaptive")), (Delivery::Adaptive, None));
        let (d, warn) = parse_delivery(Some("teleport"));
        assert_eq!(d, Delivery::Adaptive);
        assert!(warn.expect("malformed value must warn").contains("DECO_DELIVERY"));
    }

    /// The env defaults are re-read on every construction — a process that
    /// flips `DECO_DELIVERY` between runs (the bench env matrix, tenants
    /// with different settings) must see the change, not the value frozen
    /// by the first `Network` ever built. Only the delivery mode is probed
    /// here: the determinism contract makes a concurrently-built network
    /// in another test produce identical results either way, so the brief
    /// env mutation cannot flake the suite.
    #[test]
    fn env_defaults_are_read_per_construction() {
        let g = generators::path(3);
        std::env::set_var("DECO_DELIVERY", "push");
        let first = Network::new(&g).delivery;
        std::env::set_var("DECO_DELIVERY", "scan");
        let second = Network::new(&g).delivery;
        std::env::remove_var("DECO_DELIVERY");
        assert_eq!(first, Delivery::Push);
        assert_eq!(second, Delivery::Scan, "env default froze at first construction");
    }

    #[test]
    fn typed_round_cap_error_preserves_partial_stats() {
        let g = generators::path(3);
        let err = Network::new(&g).with_round_cap(10).try_run_profiled(|_| NeverHalts).unwrap_err();
        let RunError::RoundCapExceeded { cap, live, stats } = err.clone();
        assert_eq!(cap, 10);
        assert_eq!(live, 3);
        assert_eq!(stats.rounds, 10);
        assert_eq!(stats.node_rounds, 30);
        assert!(stats.messages > 0);
        assert!(err.to_string().contains("round cap"));
        // Both engines report the identical typed error.
        let naive_err = Network::new(&g)
            .with_engine(Engine::Naive)
            .with_round_cap(10)
            .try_run_profiled(|_| NeverHalts)
            .unwrap_err();
        assert_eq!(err, naive_err);
    }

    #[test]
    fn zero_rate_faulty_transport_matches_perfect_transport() {
        // A zero-rate FaultyTransport delivers everything but routes
        // through the engine's full fault path (sequential, scan, take
        // fetches) — pinned bit-identical to the perfect oracle.
        let g = generators::random_graph(500, 1800, 21);
        let perfect = Network::new(&g).run_profiled(|_| StaggerHalt);
        let zero = Network::new(&g)
            .with_transport(Arc::new(FaultyTransport::new(7)))
            .run_profiled(|_| StaggerHalt);
        assert_eq!(perfect.0.outputs, zero.0.outputs);
        assert_eq!(perfect.0.stats, zero.0.stats);
        assert_eq!(perfect.1, zero.1);
        // Thread and delivery knobs cannot perturb a faulty run.
        let knobs = Network::new(&g)
            .with_transport(Arc::new(FaultyTransport::new(7)))
            .with_threads(8)
            .with_delivery(Delivery::Push)
            .run_profiled_threaded(|_| StaggerHalt);
        assert_eq!(perfect.0.outputs, knobs.0.outputs);
        assert_eq!(perfect.0.stats, knobs.0.stats);
        assert_eq!(perfect.1, knobs.1);
    }

    #[test]
    fn transport_drops_are_counted_byte_accurately() {
        let g = generators::random_graph(60, 150, 9);
        let all_drop = FaultyTransport::new(3).with_drop(1_000_000);
        let (run, profile) = Network::new(&g)
            .with_transport(Arc::new(all_drop))
            .run_profiled(|_| FloodMax { radius: 3, best: 0 });
        // Nobody ever hears anything: every node keeps its own ident.
        for (v, &out) in run.outputs.iter().enumerate() {
            assert_eq!(out, g.ident(v));
        }
        assert!(run.stats.messages > 0);
        assert_eq!(run.stats.transport_dropped, run.stats.messages);
        // The per-round ledger closes exactly, in messages and in bits
        // (halts are silent here, so every send appears in some entry).
        let dropped: usize = profile.iter().map(|r| r.transport_dropped).sum();
        assert_eq!(dropped, run.stats.transport_dropped);
        let dropped_bits: usize = profile.iter().map(|r| r.transport_dropped_bits).sum();
        assert_eq!(dropped_bits, run.stats.total_message_bits);
        assert!(profile.iter().all(|r| r.messages == 0));
        assert!(profile.iter().all(|r| r.dropped_messages() == r.sent_messages));
    }

    /// Test transport: delay every message by a fixed `k`.
    #[derive(Debug)]
    struct DelayAll(u32);
    impl crate::transport::Transport for DelayAll {
        fn fate(&self, _slot: usize, _round: usize) -> Fate {
            Fate::Delay(self.0)
        }
    }

    /// Logs `(round, inbox size)` for every nonempty inbox until `horizon`.
    struct LogArrivals {
        horizon: usize,
        log: Vec<(usize, usize)>,
    }
    impl Protocol for LogArrivals {
        type Msg = u64;
        type Output = Vec<(usize, usize)>;
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            ctx.broadcast(ctx.ident)
        }
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
            if !inbox.is_empty() {
                self.log.push((ctx.round, inbox.len()));
            }
            if ctx.round >= self.horizon {
                Action::halt()
            } else {
                Action::idle()
            }
        }
        fn finish(self, _ctx: &NodeCtx<'_>) -> Vec<(usize, usize)> {
            self.log
        }
    }

    #[test]
    fn delayed_messages_arrive_exactly_k_rounds_late() {
        let g = generators::cycle(6);
        for k in [1u32, 3] {
            let run = Network::new(&g)
                .with_transport(Arc::new(DelayAll(k)))
                .run(|_| LogArrivals { horizon: 8, log: Vec::new() });
            for log in &run.outputs {
                // Both start broadcasts reach each node, k rounds late.
                assert_eq!(log.as_slice(), &[(1 + k as usize, 2)], "k = {k}");
            }
            // Late messages still count as delivered when they land.
            assert_eq!(run.stats.transport_dropped, 0);
        }
    }

    /// Test transport: delay only the round-0 messages by one round.
    #[derive(Debug)]
    struct DelayRoundZero;
    impl crate::transport::Transport for DelayRoundZero {
        fn fate(&self, _slot: usize, round: usize) -> Fate {
            if round == 0 {
                Fate::Delay(1)
            } else {
                Fate::Deliver
            }
        }
    }

    /// Sends payload 10 in the start phase and 20 in round 1, then logs
    /// every arrival as `(round, payload)`.
    struct TwoSends {
        horizon: usize,
        log: Vec<(usize, u64)>,
    }
    impl Protocol for TwoSends {
        type Msg = u64;
        type Output = Vec<(usize, u64)>;
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            ctx.broadcast(10)
        }
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
            for &(_, m) in inbox {
                self.log.push((ctx.round, m));
            }
            if ctx.round >= self.horizon {
                Action::halt()
            } else if ctx.round == 1 {
                Action::Broadcast(20)
            } else {
                Action::idle()
            }
        }
        fn finish(self, _ctx: &NodeCtx<'_>) -> Vec<(usize, u64)> {
            self.log
        }
    }

    #[test]
    fn collision_postpones_the_late_message_behind_the_fresh_one() {
        // The round-0 send is delayed to round 2, where the fresh round-1
        // send already occupies the edge: the laggard is postponed to round
        // 3 — late messages never displace fresh ones, and the overtaking
        // is exactly the bounded-reorder semantics.
        let g = generators::path(2);
        let run = Network::new(&g)
            .with_transport(Arc::new(DelayRoundZero))
            .run(|_| TwoSends { horizon: 5, log: Vec::new() });
        for log in &run.outputs {
            assert_eq!(log.as_slice(), &[(2, 20), (3, 10)]);
        }
    }

    #[test]
    fn delayed_message_to_halted_receiver_is_dropped() {
        // Vertex halts before the late arrival: the message dies silently,
        // exactly like a fresh send toward a halted node.
        let g = generators::path(2);
        let run = Network::new(&g)
            .with_transport(Arc::new(DelayAll(6)))
            .run(|_| LogArrivals { horizon: 3, log: Vec::new() });
        // Arrival would be round 7; everyone halts at round 3.
        assert!(run.outputs.iter().all(|log| log.is_empty()));
        assert_eq!(run.stats.rounds, 3);
    }

    #[test]
    fn threaded_with_staggered_halts_matches_sequential() {
        // Halting nodes mid-run exercises the stale-slot check across chunk
        // boundaries.
        struct HalfLife;
        impl Protocol for HalfLife {
            type Msg = u64;
            type Output = u64;
            fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
                ctx.broadcast(ctx.ident)
            }
            fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
                let sum: u64 = inbox.iter().map(|&(_, m)| m).sum();
                // Every vertex halts within 7 rounds, staggered by index.
                if (ctx.vertex + ctx.round) % 7 == 0 {
                    Action::Halt(ctx.broadcast(sum))
                } else {
                    Action::Broadcast(sum % 1000)
                }
            }
            fn finish(self, ctx: &NodeCtx<'_>) -> u64 {
                ctx.ident
            }
        }
        let g = generators::random_graph(4000, 16000, 77);
        let seq = Network::new(&g).run_profiled(|_| HalfLife);
        let par = Network::new(&g).with_threads(4).run_profiled_threaded(|_| HalfLife);
        assert_eq!(seq.0.outputs, par.0.outputs);
        assert_eq!(seq.0.stats, par.0.stats);
        assert_eq!(seq.1, par.1);
    }
}
