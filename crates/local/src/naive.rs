//! The pre-refactor delivery engine, kept as a reference implementation.
//!
//! This is the simulator's original hot path: per-round `Vec<Vec<_>>` inbox
//! allocation, a stable sort of every inbox by sender, and a binary-search
//! neighbor validation per posted message. It exists for two reasons:
//!
//! 1. **Differential testing** — the slot-arena engine in [`crate::network`]
//!    must produce bit-identical outputs, [`RunStats`] and [`RoundLoad`]
//!    profiles; the integration tests run both engines on the same
//!    workloads and compare.
//! 2. **Benchmark baseline** — the perf suites report the slot engine's
//!    speedup against this engine, measured in the same harness.
//!
//! Semantics differ from the slot engine in exactly one deliberate way:
//! this engine tolerates several messages to the same neighbor in one round
//! (they all arrive, sender-sorted stably), while the slot engine enforces
//! the LOCAL model's one-message-per-edge rule with a panic. No protocol in
//! this workspace sends duplicates.

use crate::message::Message;
use crate::network::{Action, Network, NodeCtx, Protocol, RoundLoad, Run};
use crate::stats::RunStats;
use deco_graph::Vertex;

impl Network<'_> {
    /// [`Network::run`] on the naive reference engine.
    ///
    /// # Panics
    ///
    /// Panics if a node addresses a message to a non-neighbor or the round
    /// cap is exceeded.
    pub fn run_naive<P, F>(&self, make: F) -> Run<P::Output>
    where
        P: Protocol,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        self.run_profiled_naive(make).0
    }

    /// [`Network::run_profiled`] on the naive reference engine.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::run_naive`].
    pub fn run_profiled_naive<P, F>(&self, mut make: F) -> (Run<P::Output>, Vec<RoundLoad>)
    where
        P: Protocol,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        let g = self.graph();
        let n = g.n();
        let mut stats = RunStats::zero();
        let mut profile: Vec<RoundLoad> = Vec::new();

        let mut nodes: Vec<P> = Vec::with_capacity(n);
        let mut halted = vec![false; n];
        // inboxes[v] collects (sender, msg) for the next delivery.
        let mut inboxes: Vec<Vec<(Vertex, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();

        // Round 0: start.
        let msgs_at_start = stats.messages;
        let bits_at_start = stats.total_message_bits;
        for v in 0..n {
            let ctx = self.ctx_for(v, 0);
            let mut p = make(&ctx);
            let out = p.start(&ctx);
            self.post(v, out, &mut inboxes, &mut stats);
            nodes.push(p);
        }
        let mut sent_prev_msgs = stats.messages - msgs_at_start;
        let mut sent_prev_bits = stats.total_message_bits - bits_at_start;

        let mut round = 0usize;
        loop {
            if halted.iter().all(|&h| h) {
                break;
            }
            round += 1;
            assert!(
                round <= self.round_cap(),
                "round cap {} exceeded: protocol failed to halt",
                self.round_cap()
            );
            let live = halted.iter().filter(|&&h| !h).count();
            stats.node_rounds += live;
            // Sent-vs-delivered accounting: the deltas of the step phase
            // below are this round's sends, reported in the *next* round's
            // profile entry (they are due for delivery then).
            let (msgs_before, bits_before) = (stats.messages, stats.total_message_bits);
            // Swap out inboxes for this round's delivery.
            let mut delivered: Vec<Vec<(Vertex, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();
            std::mem::swap(&mut delivered, &mut inboxes);
            let mut delivered_msgs = 0usize;
            let mut delivered_bits = 0usize;
            for v in 0..n {
                if halted[v] {
                    continue;
                }
                let mut inbox = std::mem::take(&mut delivered[v]);
                inbox.sort_by_key(|&(s, _)| s);
                delivered_msgs += inbox.len();
                delivered_bits += inbox.iter().map(|(_, m)| m.size_bits()).sum::<usize>();
                let ctx = self.ctx_for(v, round);
                match nodes[v].round(&ctx, &inbox) {
                    Action::Continue(out) => self.post(v, out, &mut inboxes, &mut stats),
                    Action::Broadcast(msg) => {
                        self.post(v, ctx.broadcast(msg), &mut inboxes, &mut stats)
                    }
                    Action::Halt(out) => {
                        self.post(v, out, &mut inboxes, &mut stats);
                        halted[v] = true;
                    }
                }
            }
            profile.push(RoundLoad {
                messages: delivered_msgs,
                bits: delivered_bits,
                live_nodes: live,
                sent_messages: sent_prev_msgs,
                sent_bits: sent_prev_bits,
            });
            sent_prev_msgs = stats.messages - msgs_before;
            sent_prev_bits = stats.total_message_bits - bits_before;
        }
        stats.rounds = round;

        let mut outputs = Vec::with_capacity(n);
        for (v, p) in nodes.into_iter().enumerate() {
            let ctx = self.ctx_for(v, round);
            outputs.push(p.finish(&ctx));
        }
        (Run { outputs, stats }, profile)
    }

    fn post<M: Message>(
        &self,
        from: Vertex,
        out: Vec<(Vertex, M)>,
        inboxes: &mut [Vec<(Vertex, M)>],
        stats: &mut RunStats,
    ) {
        let neighbors = self.neighbors_of(from);
        for (to, msg) in out {
            assert!(
                neighbors.binary_search(&to).is_ok(),
                "node {from} addressed a message to non-neighbor {to}"
            );
            stats.record_message(msg.size_bits());
            inboxes[to].push((from, msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::network::{Action, Network, NodeCtx, Protocol};
    use deco_graph::generators;
    use deco_graph::Vertex;

    /// A protocol with staggered halts, broadcasts, list sends and silent
    /// rounds — a workout for both engines.
    struct Mixed;
    impl Protocol for Mixed {
        type Msg = u64;
        type Output = u64;
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            ctx.broadcast(ctx.ident)
        }
        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
            let acc: u64 = inbox.iter().map(|&(s, m)| m ^ s as u64).sum();
            match (ctx.vertex + ctx.round) % 4 {
                0 => Action::Broadcast(acc % 997),
                1 => Action::Continue(
                    ctx.neighbors.iter().filter(|&&u| u % 2 == 0).map(|&u| (u, acc)).collect(),
                ),
                2 => Action::idle(),
                _ if ctx.round >= 3 => Action::Halt(ctx.broadcast(acc % 31)),
                _ => Action::Broadcast(acc % 13),
            }
        }
        fn finish(self, ctx: &NodeCtx<'_>) -> u64 {
            ctx.ident
        }
    }

    #[test]
    fn naive_and_slot_engines_agree() {
        let g = generators::random_graph(400, 1500, 42);
        let net = Network::new(&g);
        let fast = net.run_profiled(|_| Mixed);
        let naive = net.run_profiled_naive(|_| Mixed);
        assert_eq!(fast.0.outputs, naive.0.outputs);
        assert_eq!(fast.0.stats, naive.0.stats);
        assert_eq!(fast.1, naive.1);
    }

    #[test]
    fn engine_selector_routes_run_profiled() {
        use crate::network::Engine;
        let g = generators::random_graph(120, 400, 5);
        let slot = Network::new(&g).run_profiled(|_| Mixed);
        let via_selector = Network::new(&g).with_engine(Engine::Naive).run_profiled(|_| Mixed);
        assert_eq!(slot.0.outputs, via_selector.0.outputs);
        assert_eq!(slot.0.stats, via_selector.0.stats);
        assert_eq!(slot.1, via_selector.1);
    }

    #[test]
    fn naive_profile_sent_accounting() {
        let g = generators::cycle(12);
        struct TwoRounds;
        impl Protocol for TwoRounds {
            type Msg = u64;
            type Output = ();
            fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
                ctx.broadcast(1)
            }
            fn round(&mut self, ctx: &NodeCtx<'_>, _: &[(Vertex, u64)]) -> Action<u64> {
                if ctx.round >= 2 {
                    Action::halt()
                } else {
                    Action::Broadcast(2)
                }
            }
            fn finish(self, _: &NodeCtx<'_>) {}
        }
        let (run, profile) = Network::new(&g).run_profiled_naive(|_| TwoRounds);
        assert_eq!(run.stats.rounds, 2);
        assert_eq!(profile[0].sent_messages, 24); // the start broadcasts
        assert_eq!(profile[0].messages, 24);
        assert_eq!(profile[1].sent_messages, 24); // round 1 re-broadcasts
        assert_eq!(profile[1].messages, 24);
    }
}
