//! Message-size model tests: the Theorem 5.5 long/short tradeoff and the
//! Lemma 5.2 simulation accounting.

use deco_core::edge::defective::{edge_defective_color_in_groups, MessageMode};
use deco_core::edge::legal::{edge_color, edge_log_depth};
use deco_core::edge::via_line_graph::edge_color_via_line_graph;
use deco_core::params::LegalParams;
use deco_graph::generators;
use deco_local::line_sim::{lemma_5_2_host_stats, relay_congestion};
use deco_local::{bits_for_range, Network, RunStats};

#[test]
fn short_messages_are_logarithmic() {
    let params = edge_log_depth(1);
    let g = generators::random_bounded_degree(180, params.lambda as usize + 8, 51);
    let short = edge_color(&g, params, MessageMode::Short).unwrap();
    // Short mode: recursion levels send O(1) bounded fields (O(log n)
    // bits); the bottom-level Panconesi–Rizzi pass sends used-set bitmaps
    // over the constant per-class palette 2λ-1 — O(1) bits since λ is a
    // preset constant (the paper's O(log n) claim is for constant λ).
    let logn = bits_for_range(g.n() as u64);
    let bottom_bitmap = 2 * params.lambda as usize - 1;
    assert!(
        short.stats.max_message_bits <= bottom_bitmap + 4 * logn,
        "short-mode messages too large: {} bits vs {} + 4 log n",
        short.stats.max_message_bits,
        bottom_bitmap
    );
}

#[test]
fn long_messages_scale_with_p() {
    let params = edge_log_depth(1);
    let g = generators::random_bounded_degree(180, params.lambda as usize + 8, 51);
    let long = edge_color(&g, params, MessageMode::Long).unwrap();
    let short = edge_color(&g, params, MessageMode::Short).unwrap();
    assert_eq!(long.coloring, short.coloring);
    // Long messages carry p counts; short messages one.
    assert!(long.stats.max_message_bits > short.stats.max_message_bits);
    // Short mode pays roughly a factor p in level rounds.
    let long_level: usize = long.levels.iter().map(|l| l.rounds).sum();
    let short_level: usize = short.levels.iter().map(|l| l.rounds).sum();
    assert!(short_level >= long_level * (params.p as usize) / 2);
}

#[test]
fn epoch_structure_matches_mode() {
    let g = generators::random_bounded_degree(80, 10, 52);
    let groups = vec![0u64; g.m()];
    let w = g.max_degree() as u64;
    let net = Network::new(&g);
    let long = edge_defective_color_in_groups(&net, &groups, 1, 3, w, MessageMode::Long);
    let net = Network::new(&g);
    let short = edge_defective_color_in_groups(&net, &groups, 1, 3, w, MessageMode::Short);
    assert_eq!(long.psi, short.psi);
    // Short-mode epochs are p = 3 rounds each.
    assert!(short.stats.rounds >= 2 * long.stats.rounds);
}

#[test]
fn lemma_5_2_accounting() {
    let g = generators::random_bounded_degree(60, 8, 53);
    let native = RunStats {
        rounds: 10,
        node_rounds: 50,
        messages: 100,
        max_message_bits: 16,
        total_message_bits: 1600,
        transport_dropped: 0,
        commit_bytes: 0,
    };
    let host = lemma_5_2_host_stats(&g, native);
    assert_eq!(host.rounds, 21);
    assert_eq!(host.messages, 200);
    let congestion = relay_congestion(&g).max(1);
    assert_eq!(host.max_message_bits, 16 * congestion);
    // Congestion is O(Δ): each host edge relays messages for at most
    // O(Δ) line-graph pairs per endpoint pair.
    assert!(congestion <= 4 * g.max_degree() * g.max_degree());
}

#[test]
fn via_line_graph_vs_native_message_sizes() {
    // The paper's point in Section 5: the simulation route needs larger
    // messages than the native route with short messages.
    let g = generators::random_bounded_degree(100, 12, 54);
    let via = edge_color_via_line_graph(&g, LegalParams::log_depth(2, 1)).unwrap();
    let native = edge_color(&g, edge_log_depth(1), MessageMode::Short).unwrap();
    assert!(via.coloring.is_proper(&g));
    assert!(native.coloring.is_proper(&g));
    assert!(
        via.host.max_message_bits >= native.stats.max_message_bits,
        "simulation should not beat native short messages: {} vs {}",
        via.host.max_message_bits,
        native.stats.max_message_bits
    );
}

#[test]
fn message_counts_are_conserved() {
    // Every delivered message was sent exactly once: totals are stable
    // across identical runs and scale with edges.
    let g = generators::random_bounded_degree(100, 8, 55);
    let a = edge_color(&g, edge_log_depth(1), MessageMode::Long).unwrap();
    let b = edge_color(&g, edge_log_depth(1), MessageMode::Long).unwrap();
    assert_eq!(a.stats.messages, b.stats.messages);
    assert!(a.stats.messages >= g.m()); // at least one message per edge
}
