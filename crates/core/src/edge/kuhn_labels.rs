//! Corollary 5.4 (Kuhn \[19\]): a `4⌈Δ/p'⌉`-defective `p'²`-edge-coloring in
//! `O(1)` rounds.
//!
//! Each vertex labels its incident edges with labels from `{0, ..., p'-1}`
//! so that no label is used more than `⌈W/p'⌉` times (where `W` bounds the
//! relevant degree); the endpoints exchange labels, and the color of an edge
//! is the ordered pair of its endpoint labels (smaller identifier first).
//! At most `2⌈W/p'⌉` incident edges at each endpoint share the pair, so the
//! defect is at most `4⌈W/p'⌉`.
//!
//! The routine is group-aware: labels are assigned within each group
//! independently, so Procedure Legal-Color's edge variant can call it on all
//! classes of an edge partition simultaneously — this is what removes the
//! `log* n` term from each recursion level (Section 5).

use crate::msg::FieldMsg;
use crate::pipeline::{merge_edge_replicas, Pipeline};
use deco_graph::{EdgeIdx, Graph, Vertex};
use deco_local::{Action, Network, NodeCtx, Protocol, RunStats};

#[derive(Debug)]
struct LabelExchange {
    /// Per incident edge (sorted by neighbor): (neighbor, edge id, my label).
    labels: Vec<(Vertex, EdgeIdx, u64)>,
    p_labels: u64,
    /// Resulting φ per incident edge.
    phi: Vec<(EdgeIdx, u64)>,
}

impl Protocol for LabelExchange {
    type Msg = FieldMsg;
    type Output = Vec<(EdgeIdx, u64)>;

    fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, FieldMsg)> {
        self.labels.iter().map(|&(nbr, _, l)| (nbr, FieldMsg::new(&[(l, self.p_labels)]))).collect()
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, FieldMsg)]) -> Action<FieldMsg> {
        for (sender, m) in inbox {
            let &(_, e, mine) = self
                .labels
                .iter()
                .find(|&&(nbr, _, _)| nbr == *sender)
                // INVARIANT: the transport delivers only along host edges, so the sender is always incident.
                .expect("label from a non-incident sender");
            let theirs = m.field(0);
            // Ordered pair: the smaller-identifier endpoint's label first.
            let (first, second) =
                if ctx.ident < ctx.ident_of(*sender) { (mine, theirs) } else { (theirs, mine) };
            self.phi.push((e, first * self.p_labels + second));
        }
        Action::halt()
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> Vec<(EdgeIdx, u64)> {
        self.phi
    }
}

/// The per-vertex labeling: within each group, incident edges sorted by
/// neighbor identifier get label `index / ⌈W/p'⌉`. Purely local information.
fn make_labels(
    g: &Graph,
    v: Vertex,
    edge_groups: &[u64],
    p_labels: u64,
    w_cap: u64,
) -> Vec<(Vertex, EdgeIdx, u64)> {
    let per_label = w_cap.div_ceil(p_labels).max(1);
    // Group incident edges by edge-group, sort by neighbor ident.
    let mut incident: Vec<(u64, u64, Vertex, EdgeIdx)> =
        g.incident(v).map(|(u, e)| (edge_groups[e], g.ident(u), u, e)).collect();
    incident.sort_unstable();
    let mut labels = Vec::with_capacity(incident.len());
    let mut idx_in_group = 0u64;
    let mut cur_group: Option<u64> = None;
    for (grp, _, u, e) in incident {
        if cur_group != Some(grp) {
            cur_group = Some(grp);
            idx_in_group = 0;
        }
        let label = idx_in_group / per_label;
        assert!(label < p_labels, "vertex {v} has more than W = {w_cap} same-group incident edges");
        labels.push((u, e, label));
        idx_in_group += 1;
    }
    labels.sort_unstable(); // by neighbor, as incident() yields
    labels
}

/// Corollary 5.4, grouped: a `p'²`-edge-coloring of every group of an edge
/// partition with defect at most `4⌈W/p'⌉` within each group, in one round.
///
/// `w_cap` must bound the number of same-group edges at any vertex.
/// Returns `(phi, palette, stats)` with `phi` indexed by edge.
///
/// # Panics
///
/// Panics if some vertex exceeds `w_cap` same-group incident edges.
pub fn kuhn_defective_edge_coloring(
    net: &Network<'_>,
    edge_groups: &[u64],
    p_labels: u64,
    w_cap: u64,
) -> (Vec<u64>, u64, RunStats) {
    let g = net.graph();
    assert_eq!(edge_groups.len(), g.m(), "one group per edge");
    assert!(p_labels >= 1, "need at least one label");
    let mut pl = Pipeline::new(net);
    let outputs = pl.run("kuhn-label-exchange", |ctx| LabelExchange {
        labels: make_labels(g, ctx.vertex, edge_groups, p_labels, w_cap.max(1)),
        p_labels,
        phi: Vec::new(),
    });
    let phi = merge_edge_replicas(g.m(), &outputs, "φ");
    (phi, p_labels * p_labels, pl.into_stats())
}

/// The defect bound of Corollary 5.4 within a group: `4·⌈W/p'⌉`.
pub fn corollary_5_4_defect(w_cap: u64, p_labels: u64) -> u64 {
    4 * w_cap.div_ceil(p_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::coloring::EdgeColoring;
    use deco_graph::generators;

    fn group_defect(g: &Graph, phi: &[u64], groups: &[u64], e: EdgeIdx) -> usize {
        let (u, v) = g.endpoints(e);
        let count = |w: Vertex| {
            g.incident(w)
                .filter(|&(_, f)| f != e && groups[f] == groups[e] && phi[f] == phi[e])
                .count()
        };
        count(u) + count(v)
    }

    #[test]
    fn one_round_and_defect_bound() {
        for (n, cap, p) in [(80usize, 10usize, 3u64), (80, 10, 2), (60, 8, 4)] {
            let g = generators::random_bounded_degree(n, cap, 3);
            let net = Network::new(&g);
            let groups = vec![0u64; g.m()];
            let w = g.max_degree() as u64;
            let (phi, palette, stats) = kuhn_defective_edge_coloring(&net, &groups, p, w);
            assert_eq!(stats.rounds, 1, "Corollary 5.4 must take O(1) rounds");
            assert_eq!(palette, p * p);
            assert!(phi.iter().all(|&c| c < palette));
            let bound = corollary_5_4_defect(w, p) as usize;
            for e in 0..g.m() {
                assert!(
                    group_defect(&g, &phi, &groups, e) <= bound,
                    "edge {e} exceeds defect bound {bound}"
                );
            }
        }
    }

    #[test]
    fn full_labels_have_unit_buckets() {
        // p' = Δ means every label bucket holds one edge, so at most one
        // incident edge per endpoint can share a pair from each side:
        // defect <= 4·⌈Δ/Δ⌉ = 4 and each vertex's own labels are distinct.
        let g = generators::petersen();
        let net = Network::new(&g);
        let groups = vec![0u64; g.m()];
        let (phi, _, _) = kuhn_defective_edge_coloring(&net, &groups, 3, g.max_degree() as u64);
        let c = EdgeColoring::new(phi);
        assert!(c.defect(&g) <= 4);
    }

    #[test]
    fn respects_groups() {
        let g = generators::complete(8);
        let net = Network::new(&g);
        // Partition edges in two groups by parity of the edge index.
        let groups: Vec<u64> = (0..g.m()).map(|e| (e % 2) as u64).collect();
        let w = g.max_degree() as u64; // over-cap is fine
        let (phi, _, _) = kuhn_defective_edge_coloring(&net, &groups, 2, w);
        let bound = corollary_5_4_defect(w, 2) as usize;
        for e in 0..g.m() {
            assert!(group_defect(&g, &phi, &groups, e) <= bound);
        }
    }

    #[test]
    fn empty_graph() {
        let g = deco_graph::Graph::empty(4);
        let net = Network::new(&g);
        let (phi, palette, _) = kuhn_defective_edge_coloring(&net, &[], 2, 1);
        assert!(phi.is_empty());
        assert_eq!(palette, 4);
    }
}
