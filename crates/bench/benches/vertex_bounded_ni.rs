//! **E9 — Theorem 4.8 on the paper's graph families**: vertex coloring
//! across every bounded-NI family Section 1.2 lists — line graphs of graphs
//! (`c = 2`), line graphs of `r`-hypergraphs (`c = r`), unit-disk graphs
//! (bounded growth, `c <= 5`), and the Figure 1 family.

use deco_bench::{banner, scale, Scale, Table};
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_graph::line_graph::line_graph;
use deco_graph::properties::neighborhood_independence;
use deco_graph::{generators, Graph};
use deco_local::Network;

fn main() {
    banner("E9 / Thm 4.8", "vertex coloring across bounded-NI families");
    let big = scale() == Scale::Full;
    let mul = if big { 3 } else { 1 };

    let families: Vec<(&str, Graph, u64)> = vec![
        (
            "line graph (c=2)",
            line_graph(&generators::random_bounded_degree(120 * mul, 16, 0xE9)),
            2,
        ),
        (
            "hypergraph r=2",
            generators::random_hypergraph(60 * mul, 240 * mul, 2, 0xE9).line_graph(),
            2,
        ),
        (
            "hypergraph r=3",
            generators::random_hypergraph(60 * mul, 200 * mul, 3, 0xE9).line_graph(),
            3,
        ),
        (
            "hypergraph r=4",
            generators::random_hypergraph(60 * mul, 160 * mul, 4, 0xE9).line_graph(),
            4,
        ),
        ("unit disk (c<=5)", generators::unit_disk(220 * mul, 0.15, 0xE9), 5),
        ("figure-1 (c=2)", generators::clique_with_pendants(48 * mul), 2),
    ];

    let table = Table::new(
        &["family", "n", "Δ", "I(G)", "colors", "ϑ/Δ", "rounds", "levels"],
        &[18, 6, 5, 5, 7, 7, 7, 7],
    );
    for (name, g, c) in families {
        let measured_c = if g.n() <= 800 { neighborhood_independence(&g) as u64 } else { c };
        assert!(measured_c <= c, "{name}: family bound violated");
        let delta = g.max_degree() as u64;
        let net = Network::new(&g);
        let run = legal_color(&net, c, LegalParams::log_depth(c, 1)).unwrap();
        assert!(run.coloring.is_proper(&g), "{name}: improper");
        table.row(&[
            name.to_string(),
            g.n().to_string(),
            delta.to_string(),
            measured_c.to_string(),
            run.coloring.palette_size().to_string(),
            format!("{:.1}", run.theta as f64 / delta.max(1) as f64),
            run.stats.rounds.to_string(),
            run.levels.len().to_string(),
        ]);
    }
    println!(
        "\nshape check: the ϑ/Δ ratio stays bounded per family (O(Δ) colors for\n\
         fixed c), and rounds depend on the recursion depth, not on n."
    );
}
