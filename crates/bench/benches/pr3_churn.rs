//! **PR3 — streaming churn**: incremental repair vs from-scratch
//! recoloring, per commit, on the canonical 1%-churn scenario.
//!
//! The workload is `churn_trace(n = 50k, Δ ≤ 8)`: each commit deletes and
//! inserts 1% of the edges. For every churn commit two variants recolor the
//! *same post-commit snapshot*:
//!
//! * **incremental** — clone the pre-commit [`Recolorer`], queue the batch,
//!   `commit()`: carry colors, extract the repair region, re-run the
//!   pipeline on the region sub-network only;
//! * **from-scratch** — the one-shot Theorem 5.5 pipeline on the whole
//!   snapshot (what every pre-PR3 driver would have to do).
//!
//! Timing uses `time_interleaved` (rotating starting variant, per-variant
//! medians — the required idiom on the noisy shared container). Both
//! variants are verified proper and within the snapshot's ϑ bound before
//! timing. The acceptance criterion — incremental beats from-scratch on
//! every churn commit — lands in `BENCH_pr3.json` (override the path with
//! `DECO_BENCH_OUT`; `DECO_BENCH_SCALE=full` deepens the run).

use deco_bench::json::{Obj, Value};
use deco_bench::{banner, millis, ratio, scale, time_interleaved, Scale, Table};
use deco_core::edge::legal::{edge_color, edge_color_bound, edge_log_depth, MessageMode};
use deco_graph::trace::{churn_trace_from, TraceOp};
use deco_stream::{queue_op, Recolorer, RepairStrategy};
use std::time::Duration;

struct Row {
    commit: usize,
    m: usize,
    dirty: usize,
    incr_rounds: usize,
    scratch_rounds: usize,
    incr_msgs: usize,
    scratch_msgs: usize,
    incr: Duration,
    scratch: Duration,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scratch.as_secs_f64() / self.incr.as_secs_f64().max(1e-9)
    }

    fn to_json(&self) -> Value {
        Obj::new()
            .field("commit", self.commit)
            .field("m", self.m)
            .field("repaired_edges", self.dirty)
            .field("incremental_rounds", self.incr_rounds)
            .field("from_scratch_rounds", self.scratch_rounds)
            .field("incremental_messages", self.incr_msgs)
            .field("from_scratch_messages", self.scratch_msgs)
            .field("incremental_ms", self.incr.as_secs_f64() * 1e3)
            .field("from_scratch_ms", self.scratch.as_secs_f64() * 1e3)
            .field("speedup_incremental_vs_scratch", self.speedup())
            .build()
    }
}

fn main() {
    banner("PR3 / churn", "incremental repair vs from-scratch per commit");
    let full = scale() == Scale::Full;
    let params = edge_log_depth(1);
    let mode = MessageMode::Long;
    let samples = 3;

    // The acceptance scenario: n = 50k, Δ ≤ 8, 1% churn per commit.
    let (n, cap, commits) = if full { (50_000, 8, 6) } else { (50_000, 8, 3) };
    println!("generating churn_trace(n={n}, Δ≤{cap}, {commits} churn commits @ 1%) ...");
    let base = deco_graph::generators::random_bounded_degree(n, cap, 0x9126);
    let churn = base.m() / 100;
    let trace = churn_trace_from(&base, cap, commits, churn, 0x9126);
    drop(base);

    // Replay the initial build once; the clones below restart each churn
    // commit from the same engine state.
    let batches = trace.batches();
    let mut engine = Recolorer::new(trace.n0, params, mode).expect("preset params are valid");
    for &op in batches[0] {
        queue_op(&mut engine, op).expect("generated traces are valid");
    }
    let initial = engine.commit().expect("generated traces are valid");
    println!(
        "initial build: m = {}, Δ = {}, {} rounds, {} msgs",
        initial.m, initial.max_degree, initial.stats.rounds, initial.stats.messages
    );

    let mut rows: Vec<Row> = Vec::new();
    for (c, batch) in batches.iter().enumerate().skip(1) {
        // Run the commit once to fix the post-commit snapshot and verify.
        let mut probe = engine.clone();
        for &op in *batch {
            queue_op(&mut probe, op).expect("valid trace");
        }
        let report = probe.commit().expect("valid trace");
        assert_eq!(
            report.strategy,
            RepairStrategy::Incremental,
            "1% churn must repair incrementally"
        );
        let snapshot = probe.graph().clone();
        let bound = edge_color_bound(&params, snapshot.max_degree() as u64);
        let incr_coloring = probe.coloring();
        assert!(incr_coloring.is_proper(&snapshot), "incremental coloring improper");
        assert!(incr_coloring.colors().iter().all(|&x| x < bound));
        let scratch = edge_color(&snapshot, params, mode).expect("valid params");
        assert!(scratch.coloring.is_proper(&snapshot), "from-scratch coloring improper");

        let batch_ops: Vec<TraceOp> = batch.to_vec();
        let base = &engine;
        let times = time_interleaved(
            samples,
            &mut [
                &mut || {
                    let mut r = base.clone();
                    for &op in &batch_ops {
                        queue_op(&mut r, op).expect("valid trace");
                    }
                    r.commit().expect("valid trace").stats.rounds
                },
                &mut || edge_color(&snapshot, params, mode).expect("valid params").stats.rounds,
            ],
        );
        rows.push(Row {
            commit: c,
            m: report.m,
            dirty: report.dirty,
            incr_rounds: report.stats.rounds,
            scratch_rounds: scratch.stats.rounds,
            incr_msgs: report.stats.messages,
            scratch_msgs: scratch.stats.messages,
            incr: times[0],
            scratch: times[1],
        });
        // Advance the engine to the next commit boundary.
        engine = probe;
    }

    println!();
    let table = Table::new(
        &["commit", "m", "repaired", "incr ms", "scratch ms", "speedup", "msg ratio"],
        &[6, 9, 9, 10, 11, 8, 10],
    );
    for r in &rows {
        table.row(&[
            r.commit.to_string(),
            r.m.to_string(),
            r.dirty.to_string(),
            millis(r.incr),
            millis(r.scratch),
            format!("{:.2}x", r.speedup()),
            format!("{}x", ratio(r.scratch_msgs, r.incr_msgs)),
        ]);
    }
    println!("\n(incremental clones the engine per sample: snapshot rebuild + repair included)");

    let met = rows.iter().all(|r| r.speedup() > 1.0);
    let json = Obj::new()
        .field("bench", "pr3_churn")
        .field("scale", if full { "full" } else { "quick" })
        .field("samples", samples)
        .field("n", n)
        .field("delta_cap", cap)
        .field("churn_edges_per_commit", churn)
        .field(
            "acceptance",
            Obj::new()
                .field(
                    "criterion",
                    "incremental repair beats the from-scratch pipeline on every commit \
                     of the 1%-churn scenario at n=50k",
                )
                .field("met", met)
                .field("min_speedup", rows.iter().map(Row::speedup).fold(f64::INFINITY, f64::min))
                .build(),
        )
        .field(
            "initial_build",
            Obj::new()
                .field("m", initial.m)
                .field("rounds", initial.stats.rounds)
                .field("messages", initial.stats.messages)
                .build(),
        )
        .field("commits", Value::Array(rows.iter().map(Row::to_json).collect()))
        .build();
    let out = std::env::var("DECO_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr3.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, deco_bench::json::to_string(&json)).expect("write bench json");
    println!("wrote {out}");
    assert!(met, "acceptance failed: incremental did not beat from-scratch on every commit");
}
