//! **PR1 — simulator throughput**: wall-clock of the slot-arena delivery
//! engine versus the pre-refactor naive engine, plus deterministic parallel
//! stepping, on the workloads every later scaling PR will be measured on:
//!
//! 1. FloodMax on a 100k–1M-vertex bounded-degree random graph — pure
//!    simulator overhead (trivial per-node compute);
//! 2. Legal-Color-shaped gossip on the line graph `L(G)` — the Lemma 5.2
//!    workload shape, denser than the host;
//! 3. the paper's *actual* Legal-Color on a bounded-NI generator (torus,
//!    `I(G) ≤ 4`) at 100k+ vertices, whole pipeline, both engines;
//! 4. the full edge-coloring pipeline (`edge_color`, Theorem 5.5) on a
//!    bounded-degree random graph, both engines.
//!
//! Every comparison also asserts bit-identical outputs and stats across
//! engines — a perf number from a wrong simulation is worthless.
//!
//! Results print as tables and are written to `BENCH_pr1.json` (override
//! the path with `DECO_BENCH_OUT`), seeding the perf trajectory that later
//! PRs extend. `DECO_BENCH_SCALE=full` grows the sweeps to 1M vertices.

use deco_bench::json::{Obj, Value};
use deco_bench::{banner, millis, scale, time_median, Scale, Table};
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_graph::line_graph::line_graph;
use deco_graph::{generators, Graph};
use deco_local::{Action, Engine, Network, NodeCtx, Protocol, Run};
use std::time::Duration;

/// FloodMax: pure delivery throughput, trivial per-node compute.
struct FloodMax {
    radius: usize,
    best: u64,
}

impl Protocol for FloodMax {
    type Msg = u64;
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(usize, u64)> {
        self.best = ctx.ident;
        ctx.broadcast(self.best)
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(usize, u64)]) -> Action<u64> {
        for &(_, v) in inbox {
            self.best = self.best.max(v);
        }
        if ctx.round >= self.radius {
            Action::halt()
        } else {
            Action::Broadcast(self.best)
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.best
    }
}

/// Legal-Color-shaped traffic: field messages, palette comparisons and
/// greedy recoloring, without the full recursion bookkeeping.
struct LegalShaped {
    color: u64,
    palette: u64,
    rounds: usize,
}

impl Protocol for LegalShaped {
    type Msg = (u64, u64);
    type Output = u64;

    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(usize, (u64, u64))> {
        self.color = ctx.ident % self.palette;
        ctx.broadcast((self.color, ctx.ident))
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(usize, (u64, u64))]) -> Action<(u64, u64)> {
        // Recolor greedily against the received colors, paper-style.
        let mut used = 0u128;
        for &(_, (c, _)) in inbox {
            if c < 128 {
                used |= 1 << c;
            }
        }
        if used & (1 << (self.color % 128)) != 0 {
            self.color = (0..self.palette).find(|c| used & (1 << (c % 128)) == 0).unwrap_or(0);
        }
        if ctx.round >= self.rounds {
            Action::halt()
        } else {
            Action::Broadcast((self.color, ctx.ident))
        }
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
        self.color
    }
}

/// One engine-comparison row: times a workload under the naive and slot
/// engines (plus the threaded runner where applicable) and checks the runs
/// agree bit for bit.
struct EngineRow {
    name: String,
    n: usize,
    m: usize,
    rounds: usize,
    messages: usize,
    naive: Duration,
    slot: Duration,
    threaded: Option<Duration>,
}

impl EngineRow {
    fn speedup(&self) -> f64 {
        self.naive.as_secs_f64() / self.slot.as_secs_f64().max(1e-9)
    }

    fn speedup_threaded(&self) -> Option<f64> {
        self.threaded.map(|t| self.naive.as_secs_f64() / t.as_secs_f64().max(1e-9))
    }

    fn to_json(&self) -> Value {
        let mut o = Obj::new()
            .field("workload", self.name.as_str())
            .field("n", self.n)
            .field("m", self.m)
            .field("rounds", self.rounds)
            .field("messages", self.messages)
            .field("naive_ms", self.naive.as_secs_f64() * 1e3)
            .field("slot_ms", self.slot.as_secs_f64() * 1e3)
            .field("speedup_slot_vs_naive", self.speedup());
        if let Some(t) = self.threaded {
            o = o
                .field("threaded_ms", t.as_secs_f64() * 1e3)
                .field("speedup_threaded_vs_naive", self.speedup_threaded().unwrap_or(0.0));
        }
        o.build()
    }
}

fn compare_engines<P, F>(name: &str, g: &Graph, samples: usize, threaded: bool, mk: F) -> EngineRow
where
    P: Protocol + Send,
    P::Msg: Send + Sync,
    P::Output: PartialEq + std::fmt::Debug,
    F: Fn(&NodeCtx<'_>) -> P + Copy,
{
    let net = Network::new(g);
    let naive_net = Network::new(g).with_engine(Engine::Naive);
    let (slot_run, slot_t): (Run<P::Output>, _) = time_median(samples, || net.run(mk));
    let (naive_run, naive_t) = time_median(samples, || naive_net.run(mk));
    assert_eq!(slot_run.outputs, naive_run.outputs, "{name}: engines diverged (outputs)");
    assert_eq!(slot_run.stats, naive_run.stats, "{name}: engines diverged (stats)");
    let threaded_t = threaded.then(|| {
        let (thr_run, thr_t) = time_median(samples, || net.run_threaded(mk));
        assert_eq!(thr_run.outputs, slot_run.outputs, "{name}: threaded diverged");
        assert_eq!(thr_run.stats, slot_run.stats, "{name}: threaded stats diverged");
        thr_t
    });
    EngineRow {
        name: name.to_string(),
        n: g.n(),
        m: g.m(),
        rounds: slot_run.stats.rounds,
        messages: slot_run.stats.messages,
        naive: naive_t,
        slot: slot_t,
        threaded: threaded_t,
    }
}

/// Times the real Legal-Color pipeline (Theorem 4.5 driver) on `g` under
/// both engines; panics if their colorings or stats differ.
fn compare_legal_pipeline(name: &str, g: &Graph, c: u64, samples: usize) -> EngineRow {
    let params = LegalParams::log_depth(c, 1);
    let slot_net = Network::new(g);
    let naive_net = Network::new(g).with_engine(Engine::Naive);
    let (slot_run, slot_t) =
        time_median(samples, || legal_color(&slot_net, c, params).expect("params are valid"));
    let (naive_run, naive_t) =
        time_median(samples, || legal_color(&naive_net, c, params).expect("params are valid"));
    assert_eq!(slot_run.coloring, naive_run.coloring, "{name}: colorings diverged");
    assert_eq!(slot_run.stats, naive_run.stats, "{name}: stats diverged");
    assert!(slot_run.coloring.is_proper(g), "{name}: improper coloring");
    EngineRow {
        name: name.to_string(),
        n: g.n(),
        m: g.m(),
        rounds: slot_run.stats.rounds,
        messages: slot_run.stats.messages,
        naive: naive_t,
        slot: slot_t,
        threaded: None,
    }
}

/// Times the full edge-coloring pipeline (Theorem 5.5) under both engines.
fn compare_edge_pipeline(name: &str, g: &Graph, samples: usize) -> EngineRow {
    use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
    let params = edge_log_depth(1);
    let (slot_run, slot_t) = time_median(samples, || {
        edge_color(g, params, MessageMode::Long).expect("params are valid")
    });
    // `edge_color` builds its own Network internally; the naive side of the
    // comparison goes through the grouped driver against a naive-engine
    // network, which is the same pipeline with the engine swapped.
    let groups = vec![0u64; g.m()];
    let naive_net = Network::new(g).with_engine(Engine::Naive);
    let (naive_run, naive_t) = time_median(samples, || {
        deco_core::edge::legal::edge_color_in_groups(
            &naive_net,
            &groups,
            1,
            params,
            g.max_degree() as u64,
            MessageMode::Long,
        )
        .expect("params are valid")
    });
    assert_eq!(slot_run.coloring, naive_run.coloring, "{name}: colorings diverged");
    assert_eq!(slot_run.stats, naive_run.stats, "{name}: stats diverged");
    assert!(slot_run.coloring.is_proper(g), "{name}: improper edge coloring");
    EngineRow {
        name: name.to_string(),
        n: g.n(),
        m: g.m(),
        rounds: slot_run.stats.rounds,
        messages: slot_run.stats.messages,
        naive: naive_t,
        slot: slot_t,
        threaded: None,
    }
}

fn main() {
    banner("PR1 / wallclock", "slot-arena delivery vs the pre-refactor engine");
    let full = scale() == Scale::Full;
    let samples = 3;
    let mut rows: Vec<EngineRow> = Vec::new();

    // 1. FloodMax: pure simulator overhead at scale.
    let flood_n = if full { 1_000_000 } else { 100_000 };
    println!("generating random_bounded_degree(n={flood_n}, Δ=8) ...");
    let g = generators::random_bounded_degree(flood_n, 8, 0x9121);
    rows.push(compare_engines("floodmax/random-bounded-degree", &g, samples, true, |_| FloodMax {
        radius: 4,
        best: 0,
    }));
    drop(g);

    // 2. Legal-Color-shaped gossip on L(G): Lemma 5.2 workload shape.
    let host_n = if full { 250_000 } else { 25_000 };
    println!("generating L(random_bounded_degree(n={host_n}, Δ=8)) ...");
    let l = line_graph(&generators::random_bounded_degree(host_n, 8, 0x9122));
    rows.push(compare_engines("legal-shaped/line-graph", &l, samples, true, |_| LegalShaped {
        color: 0,
        palette: 32,
        rounds: 6,
    }));
    drop(l);

    // 3. The real Legal-Color on a bounded-NI generator (torus: I(G) <= 4).
    let side = if full { 1000 } else { 320 };
    println!("generating torus({side}x{side}) ...");
    let t = generators::torus(side, side);
    rows.push(compare_legal_pipeline("legal-color/torus-bounded-ni", &t, 4, 1));
    drop(t);

    // 4. The full edge-coloring pipeline on a random graph.
    let (edge_n, edge_d) = if full { (30_000, 40) } else { (6_000, 40) };
    println!("generating random_bounded_degree(n={edge_n}, Δ={edge_d}) ...");
    let g = generators::random_bounded_degree(edge_n, edge_d, 0x9124);
    rows.push(compare_edge_pipeline("edge-color/random-bounded-degree", &g, 1));
    drop(g);

    // Report.
    println!();
    let table = Table::new(
        &["workload", "n", "rounds", "naive ms", "slot ms", "thr ms", "speedup"],
        &[34, 9, 7, 10, 10, 10, 8],
    );
    for r in &rows {
        table.row(&[
            r.name.clone(),
            r.n.to_string(),
            r.rounds.to_string(),
            millis(r.naive),
            millis(r.slot),
            r.threaded.map_or("-".to_string(), millis),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    println!("\n(speedup = naive / slot, single-threaded; engines verified bit-identical)");

    let threads = std::thread::available_parallelism().map_or(1, |p| p.get()).min(16);
    let json = Obj::new()
        .field("bench", "pr1_wallclock")
        .field("scale", if full { "full" } else { "quick" })
        .field("samples", samples)
        // Machine facts live under "environment": the gate treats the block
        // as informational, which keeps the deterministic counters above it
        // inside BENCH_baseline.json on any host.
        .field("environment", Obj::new().field("threads_available", threads).build())
        .field(
            "acceptance",
            Obj::new()
                .field("criterion", "slot engine >= 2x naive on a 100k+-vertex run")
                .field("met", rows.iter().filter(|r| r.n >= 100_000).any(|r| r.speedup() >= 2.0))
                .build(),
        )
        .field("workloads", rows.iter().map(|r| r.to_json()).collect::<Vec<Value>>())
        .build();
    // Default to the workspace root so the trajectory file lands next to
    // ROADMAP.md regardless of the bench runner's working directory.
    let out = std::env::var("DECO_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr1.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, deco_bench::json::to_string(&json)).expect("write bench json");
    println!("wrote {out}");
}
