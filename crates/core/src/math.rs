//! Number-theoretic and combinatorial primitives shared by the coloring
//! algorithms: the iterated logarithm, prime search, and polynomial codes
//! over GF(q).
//!
//! The constructive engine behind Linial's coloring (Lemma 2.1(1)) and
//! Kuhn's defective coloring (Lemma 2.1(3) / Theorem 4.7) is the same: map
//! each color `c` of the current palette to a polynomial `p_c` of degree at
//! most `k` over GF(q) (the base-q digits of `c` are its coefficients). Two
//! distinct polynomials agree on at most `k` of the `q` points, so a vertex
//! that knows its neighbors' colors can pick an evaluation point `x` at which
//! it collides with few (or, if `q > k·Δ`, zero) neighbors, and adopt the
//! pair `(x, p_c(x))` — a palette of `q²` colors — as its next color.

/// The iterated logarithm: `log*(x)` is the smallest `i` such that applying
/// base-2 `log` to `x` `i` times yields a value at most 2 (Section 2).
///
/// # Example
///
/// ```
/// use deco_core::math::log_star;
/// assert_eq!(log_star(1), 0);
/// assert_eq!(log_star(2), 0);
/// assert_eq!(log_star(4), 1);
/// assert_eq!(log_star(16), 2);
/// assert_eq!(log_star(65_536), 3);
/// assert_eq!(log_star(u64::MAX), 4);
/// ```
pub fn log_star(x: u64) -> u32 {
    let mut v = x as f64;
    let mut i = 0;
    while v > 2.0 {
        v = v.log2();
        i += 1;
    }
    i
}

/// Whether `x` is prime (deterministic trial division; inputs here are small).
pub fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x % 2 == 0 {
        return x == 2;
    }
    let mut d = 3u64;
    while d * d <= x {
        if x % d == 0 {
            return false;
        }
        d += 2;
    }
    true
}

/// The smallest prime `>= lo` (Bertrand guarantees one below `2·lo`).
pub fn next_prime(lo: u64) -> u64 {
    let mut x = lo.max(2);
    while !is_prime(x) {
        x += 1;
    }
    x
}

/// Integer ceiling of the `(k+1)`-th root comparison: whether
/// `q.pow(k + 1) >= m`, computed without overflow.
pub fn pow_at_least(q: u64, k: u32, m: u64) -> bool {
    let mut acc: u128 = 1;
    let target = m as u128;
    for _ in 0..=k {
        acc = acc.saturating_mul(q as u128);
        if acc >= target {
            return true;
        }
    }
    acc >= target
}

/// The base-`q` digits of `value` (little-endian), padded to `len` digits.
///
/// These are the coefficients of the polynomial code of a color.
///
/// # Panics
///
/// Panics if `value >= q^len` (the color does not fit) or `q < 2`.
pub fn digits_base(value: u64, q: u64, len: usize) -> Vec<u64> {
    assert!(q >= 2, "base must be at least 2");
    let mut digits = Vec::with_capacity(len);
    let mut v = value;
    for _ in 0..len {
        digits.push(v % q);
        v /= q;
    }
    assert_eq!(v, 0, "value {value} does not fit in {len} base-{q} digits");
    digits
}

/// Evaluates the polynomial with the given coefficients (little-endian) at
/// `x` over GF(q) by Horner's rule.
///
/// # Panics
///
/// Panics if `q == 0`.
pub fn poly_eval(coeffs: &[u64], x: u64, q: u64) -> u64 {
    assert!(q > 0, "modulus must be positive");
    let (x, q128) = (x as u128 % q as u128, q as u128);
    let mut acc: u128 = 0;
    for &c in coeffs.iter().rev() {
        acc = (acc * x + c as u128 % q128) % q128;
    }
    acc as u64
}

/// One step of a polynomial-code color reduction: degree bound `k`, field
/// size `q`. Reduces a proper `m`-coloring (`m <= q^{k+1}`) to a proper
/// `q²`-coloring when `q > k·Δ` (Linial), or to a defective coloring adding
/// at most `⌊k·Δ/q⌋` defect per vertex (Kuhn's argmin choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeStep {
    /// Field size (a prime).
    pub q: u64,
    /// Polynomial degree bound.
    pub k: u32,
    /// Palette size this step reduces *from*.
    pub from_palette: u64,
    /// Palette size after the step: `q²`.
    pub to_palette: u64,
    /// Defect this step may add per vertex: 0 for a Linial step,
    /// `⌊k·Δ/q⌋` for a Kuhn step.
    pub defect_budget: u64,
}

/// Chooses the cheapest `(k, q)` for one reduction step from palette `m`.
///
/// `q` must satisfy `q >= q_floor(k)` (caller encodes the Linial constraint
/// `q > k·Δ` or the Kuhn constraint `q >= ⌈k·Δ/δ⌉`) and `q^{k+1} >= m`. Among
/// feasible `k` in `1..=64`, picks the one minimizing the output palette
/// `q²`.
fn best_step(m: u64, q_floor: impl Fn(u32) -> u64) -> (u32, u64) {
    let mut best: Option<(u64, u32)> = None; // (q, k)
    for k in 1..=64u32 {
        // Smallest q meeting both constraints.
        let mut lo = q_floor(k).max(2);
        // Raise lo until q^{k+1} >= m.
        while !pow_at_least(lo, k, m) {
            lo += 1;
        }
        let q = next_prime(lo);
        match best {
            Some((bq, _)) if bq <= q => {}
            _ => best = Some((q, k)),
        }
        // Larger k can only help while q_floor grows slowly; stop once the
        // floor alone exceeds the current best.
        if let Some((bq, _)) = best {
            if q_floor(k + 1).max(2) > bq {
                break;
            }
        }
    }
    // INVARIANT: the loop tries k = 1 first, which is always feasible, so a best candidate exists.
    let (q, k) = best.expect("k = 1 is always feasible");
    (k, q)
}

/// The Linial reduction schedule: from an initial proper `m0`-coloring of a
/// graph with maximum degree `delta`, a sequence of zero-defect steps ending
/// in a palette of `O(Δ²)` colors. The schedule length is `O(log* m0)`
/// (Lemma 2.1(1)).
///
/// Every vertex can compute this schedule locally from `(m0, delta)`.
pub fn linial_schedule(m0: u64, delta: u64) -> Vec<CodeStep> {
    let mut steps = Vec::new();
    let mut m = m0.max(1);
    loop {
        let (k, q) = best_step(m, |k| (k as u64) * delta + 1);
        let to = q * q;
        if to >= m {
            break; // fixpoint reached: no further progress
        }
        steps.push(CodeStep { q, k, from_palette: m, to_palette: to, defect_budget: 0 });
        m = to;
    }
    steps
}

/// The palette the Linial schedule converges to: `next_prime(Δ+1)²`-ish.
pub fn linial_final_palette(m0: u64, delta: u64) -> u64 {
    linial_schedule(m0, delta).last().map(|s| s.to_palette).unwrap_or(m0.max(1))
}

/// The Kuhn defective-coloring schedule (Lemma 2.1(3) / Theorem 4.7): from a
/// *proper* `m0`-coloring of a graph with maximum degree `delta`, a sequence
/// of argmin steps whose defect budgets sum to at most `target_defect`,
/// ending in a palette of `O((Δ/d)²)` colors where `d = target_defect`.
///
/// Strategy: if `target_defect < 4`, the proper coloring itself is already
/// `O((Δ/d)²)` colors (then `Δ/d > Δ/4`), so the schedule is empty. Otherwise
/// up to three argmin steps with budgets `d/4, d/4, d/2`: the early steps
/// have large degree-`k` polynomials (palette still big), the last step gets
/// the big budget and lands at `O((2kΔ/d)²)` colors with small `k`. Steps
/// that would not shrink the palette are skipped, preserving the hard defect
/// bound Σ budgets ≤ d.
pub fn kuhn_schedule(m0: u64, delta: u64, target_defect: u64) -> Vec<CodeStep> {
    let d = target_defect;
    if d < 4 || delta == 0 {
        return Vec::new();
    }
    let budgets = [d / 4, d / 4, d / 2];
    let mut steps = Vec::new();
    let mut m = m0.max(1);
    for &budget in &budgets {
        debug_assert!(budget >= 1);
        let (k, q) = best_step(m, |k| ((k as u64) * delta).div_ceil(budget).max(2));
        let to = q * q;
        if to >= m {
            continue; // no progress; skip and save the budget
        }
        let added = (k as u64) * delta / q; // ⌊kΔ/q⌋ ≤ budget by construction
        debug_assert!(added <= budget, "step defect {added} exceeds budget {budget}");
        steps.push(CodeStep { q, k, from_palette: m, to_palette: to, defect_budget: added });
        m = to;
    }
    steps
}

/// Upper bound on the palette after running [`kuhn_schedule`].
pub fn kuhn_final_palette(m0: u64, delta: u64, target_defect: u64) -> u64 {
    kuhn_schedule(m0, delta, target_defect).last().map(|s| s.to_palette).unwrap_or(m0.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(0), 0);
        assert_eq!(log_star(3), 1);
        assert_eq!(log_star(5), 2);
        assert_eq!(log_star(2_u64.pow(16)), 3);
        assert_eq!(log_star(2_u64.pow(63)), 4);
    }

    #[test]
    fn primes() {
        assert!(is_prime(2));
        assert!(is_prime(97));
        assert!(!is_prime(1));
        assert!(!is_prime(91)); // 7 * 13
        assert_eq!(next_prime(1), 2);
        assert_eq!(next_prime(8), 11);
        assert_eq!(next_prime(11), 11);
    }

    #[test]
    fn pow_comparison() {
        assert!(pow_at_least(3, 1, 9));
        assert!(!pow_at_least(3, 1, 10));
        assert!(pow_at_least(2, 63, u64::MAX)); // saturating, no overflow
    }

    #[test]
    fn digits_roundtrip() {
        let d = digits_base(123, 5, 4);
        assert_eq!(d, vec![3, 4, 4, 0]); // 123 = 3 + 4*5 + 4*25
        let mut v = 0u64;
        for (i, &dig) in d.iter().enumerate() {
            v += dig * 5u64.pow(i as u32);
        }
        assert_eq!(v, 123);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn digits_overflow_panics() {
        digits_base(125, 5, 3);
    }

    #[test]
    fn poly_eval_matches_naive() {
        let coeffs = [3u64, 0, 2, 5];
        let q: u64 = 11;
        for x in 0..q {
            let naive: u64 =
                coeffs.iter().enumerate().map(|(i, &c)| c * x.pow(i as u32) % q).sum::<u64>() % q;
            assert_eq!(poly_eval(&coeffs, x, q), naive);
        }
    }

    #[test]
    fn distinct_polys_disagree_somewhere() {
        // Two distinct degree-k polynomials over GF(q) agree on <= k points.
        let q: u64 = 13;
        let k: usize = 2;
        let a = digits_base(57, q, k + 1);
        let b = digits_base(99, q, k + 1);
        let agreements = (0..q).filter(|&x| poly_eval(&a, x, q) == poly_eval(&b, x, q)).count();
        assert!(agreements <= k);
    }

    #[test]
    fn linial_schedule_converges_fast() {
        for delta in [1u64, 2, 3, 8, 20, 64] {
            for m0 in [10u64, 1_000, 1 << 20, 1 << 40] {
                let steps = linial_schedule(m0, delta);
                assert!(
                    steps.len() as u32 <= log_star(m0) + 3,
                    "Δ={delta} m0={m0}: {} steps",
                    steps.len()
                );
                // Palettes strictly decrease and end at O(Δ²).
                let mut prev = m0;
                for s in &steps {
                    assert!(s.to_palette < prev);
                    assert!(s.q > (s.k as u64) * delta, "Linial needs q > kΔ");
                    assert_eq!(s.defect_budget, 0);
                    prev = s.to_palette;
                }
                let final_p = linial_final_palette(m0, delta);
                let bound = {
                    let dp = next_prime(delta + 2);
                    (dp * dp).max(m0.min(16))
                };
                assert!(
                    final_p <= 4 * bound,
                    "Δ={delta} m0={m0}: final palette {final_p} > 4·{bound}"
                );
            }
        }
    }

    #[test]
    fn kuhn_schedule_respects_budget_and_palette() {
        for delta in [16u64, 64, 256, 1024] {
            for p in [2u64, 4, 8, 16] {
                let d = delta / p;
                if d < 1 {
                    continue;
                }
                let m0 = linial_final_palette(1 << 20, delta);
                let steps = kuhn_schedule(m0, delta, d);
                let total: u64 = steps.iter().map(|s| s.defect_budget).sum();
                assert!(total <= d, "Δ={delta} p={p}: defect {total} > {d}");
                if d >= 4 {
                    let final_p = kuhn_final_palette(m0, delta, d);
                    // O(p²) with a generous constant for prime slack and
                    // small-k rounding.
                    assert!(final_p <= 700 * p * p + 200, "Δ={delta} p={p}: palette {final_p}");
                }
            }
        }
    }

    #[test]
    fn kuhn_schedule_small_defect_is_empty() {
        assert!(kuhn_schedule(100, 10, 0).is_empty());
        assert!(kuhn_schedule(100, 10, 3).is_empty());
        assert!(kuhn_schedule(100, 0, 10).is_empty());
    }
}
