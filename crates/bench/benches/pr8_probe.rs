//! **PR8 — probe overhead and profile determinism**: the observability
//! layer must be free when off and honest when on.
//!
//! Three claims, measured on the pr3/pr4/pr7 acceptance workload
//! (`churn_trace(n = 50k, Δ ≤ 8)`, 1% churn per commit, same seed):
//!
//! * **A. determinism matrix** — the full replay is recorded under every
//!   `DECO_THREADS` {1, 2, 8} × `DECO_DELIVERY` {scan, push, adaptive}
//!   combination; the nine deterministic event-stream digests are
//!   **hard-asserted identical** and the shared digest lands in the json
//!   as an exact-match gate counter.
//! * **B. zero-cost-when-disabled** — a million `enabled()` gates plus
//!   `Arc` clone/drop of the shared null probe are **hard-asserted** to
//!   perform zero heap allocations (counting allocator), and the
//!   null-probe replay's `CommitReport`s are hard-asserted bit-identical
//!   to the recording replay's — an enabled probe observes the run, it
//!   never changes it.
//! * **C. overhead when on** — interleaved medians of a steady-state
//!   churn commit under the null and recording probes (wall is
//!   informational, ±10% container noise; the deterministic counters
//!   above are the gate).
//!
//! Results land in `BENCH_pr8.json` (override with `DECO_BENCH_OUT`;
//! `DECO_BENCH_SCALE=full` deepens the run).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: delegates everything to the system allocator; the counter is a
// relaxed atomic with no further invariants.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    // SAFETY: forwards the caller's layout contract untouched to the
    // system allocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: forwards the caller's layout contract untouched to the
    // system allocator; the count bump has no safety obligations.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use deco_bench::json::Obj;
use deco_bench::{banner, millis, scale, time_interleaved, Scale};
use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_graph::generators;
use deco_graph::trace::{churn_trace_from, Trace};
use deco_probe::{Event, Probe, RecordingProbe};
use deco_stream::{queue_op, replay_trace_probed, CommitReport, Recolorer, ReplayOutcome};
use std::sync::Arc;

fn allocs(f: impl FnOnce()) -> usize {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

fn replay(trace: &Trace, probe: Arc<dyn Probe>) -> ReplayOutcome {
    replay_trace_probed(trace, edge_log_depth(1), MessageMode::Long, 25, probe)
        .expect("valid trace")
}

fn main() {
    banner("PR8 / probe", "zero-cost-when-disabled tracing, deterministic profiles");
    let full = scale() == Scale::Full;
    let samples = if full { 7 } else { 3 };

    // The pr3/pr4/pr7 acceptance workload: n = 50k, Δ ≤ 8, 1% churn.
    let (n, cap, commits) = (50_000usize, 8usize, if full { 6 } else { 3 });
    println!("workload: churn_trace(n={n}, Δ≤{cap}, {commits} churn commits @ 1%)\n");
    let base = generators::random_bounded_degree(n, cap, 0x9126);
    let churn = base.m() / 100;
    let trace = churn_trace_from(&base, cap, commits, churn, 0x9126);
    drop(base);

    // A. Determinism matrix: nine (threads × delivery) legs, one digest.
    // The simulator spawns scoped worker threads per run and none survive
    // it, so re-pointing the env between legs is race-free here.
    println!("A: event-stream digest across DECO_THREADS x DECO_DELIVERY ...");
    let mut digests: Vec<(String, u64)> = Vec::new();
    let mut reports_by_leg: Vec<Vec<CommitReport>> = Vec::new();
    for threads in ["1", "2", "8"] {
        for delivery in ["scan", "push", "adaptive"] {
            std::env::set_var("DECO_THREADS", threads);
            std::env::set_var("DECO_DELIVERY", delivery);
            let probe = Arc::new(RecordingProbe::new());
            let out = replay(&trace, probe.clone());
            digests.push((format!("t{threads}/{delivery}"), probe.digest()));
            reports_by_leg.push(out.reports);
        }
    }
    let digest = digests[0].1;
    for (leg, d) in &digests {
        assert_eq!(*d, digest, "leg {leg} diverged from {}", digests[0].0);
    }
    for legs in reports_by_leg.windows(2) {
        assert_eq!(legs[0], legs[1], "CommitReports diverged across matrix legs");
    }
    println!("   {} legs, shared digest {digest:#018x}", digests.len());

    // The recorded stream for the event census and gate totals, pinned to
    // t1/scan. The gated deterministic counters are leg-invariant (asserted
    // above), but `Env` events legitimately vary with the execution
    // environment, so the census leg runs under one fixed setting rather
    // than whatever machine default the process inherits. (t1/scan is also
    // what this census measured historically, when the env defaults were
    // frozen at first read — the baseline bytes predate the fix.)
    std::env::set_var("DECO_THREADS", "1");
    std::env::set_var("DECO_DELIVERY", "scan");
    let probe = Arc::new(RecordingProbe::new());
    let out = replay(&trace, probe.clone());
    std::env::remove_var("DECO_THREADS");
    std::env::remove_var("DECO_DELIVERY");
    let events = probe.take();
    let count = |f: &dyn Fn(&Event) -> bool| events.iter().filter(|e| f(e)).count();
    let round_samples = count(&|e| matches!(e, Event::Round { .. }));
    let phase_exits = count(&|e| matches!(e, Event::PhaseExit { .. }));
    let commit_exits = count(&|e| matches!(e, Event::CommitExit { .. }));
    let commit_bytes_events = count(&|e| matches!(e, Event::CommitBytes { .. }));
    let env_events = count(&|e| matches!(e, Event::Env { .. }));
    let mut totals = deco_local::RunStats::zero();
    for rep in &out.reports {
        totals += rep.stats;
    }

    // B. Zero-cost-when-disabled, both halves hard-asserted.
    println!("B: disabled-probe cost ...");
    let null = deco_probe::null(); // initialize the shared Arc up front
    let gate_allocs = allocs(|| {
        for _ in 0..1_000_000 {
            let p = Arc::clone(&null);
            assert!(!p.enabled(), "the null probe must stay disabled");
        }
    });
    assert_eq!(gate_allocs, 0, "the disabled-probe gate must not allocate");
    let plain = replay(&trace, deco_probe::null());
    assert_eq!(
        plain.reports, out.reports,
        "a recording probe must not change any commit's counters"
    );
    println!("   1M enabled() gates + Arc traffic: {gate_allocs} allocations");

    // C. Steady-state commit overhead, null vs recording probe. Clone and
    // queueing ride inside both closures equally; the recording probe is
    // drained per pass so its buffer never compounds.
    println!("C: commit wall overhead (interleaved medians, {samples} samples) ...");
    let built_null = {
        let mut r =
            Recolorer::new(trace.n0, edge_log_depth(1), MessageMode::Long).expect("preset params");
        for &op in trace.batches()[0] {
            queue_op(&mut r, op).expect("valid trace");
        }
        r.commit().expect("valid trace");
        r
    };
    let recording = Arc::new(RecordingProbe::new());
    let built_rec = {
        let mut r = built_null.clone();
        r.set_probe(recording.clone());
        r
    };
    let batch = trace.batches()[1].to_vec();
    let mut alloc_null = 0usize;
    let mut alloc_rec = 0usize;
    let medians = time_interleaved(
        samples,
        &mut [
            &mut || {
                alloc_null = allocs(|| {
                    let mut r = built_null.clone();
                    for &op in &batch {
                        queue_op(&mut r, op).expect("valid trace");
                    }
                    r.commit().expect("valid trace");
                });
            },
            &mut || {
                alloc_rec = allocs(|| {
                    let mut r = built_rec.clone();
                    for &op in &batch {
                        queue_op(&mut r, op).expect("valid trace");
                    }
                    r.commit().expect("valid trace");
                });
                recording.take();
            },
        ],
    );
    let (null_med, rec_med) = (medians[0], medians[1]);
    println!(
        "   null {} vs recording {} per commit ({} extra allocations when recording)",
        millis(null_med),
        millis(rec_med),
        alloc_rec.saturating_sub(alloc_null)
    );

    let json = Obj::new()
        .field("bench", "pr8_probe")
        .field("scale", if full { "full" } else { "quick" })
        .field("samples", samples)
        .field("n", n)
        .field("delta_cap", cap)
        .field("churn_edges_per_commit", churn)
        .field("matrix_legs", digests.len())
        .field("event_digest", format!("{digest:016x}"))
        .field("deterministic_events", events.iter().filter(|e| e.is_deterministic()).count())
        .field("round_samples", round_samples)
        .field("phase_exit_events", phase_exits)
        .field("commit_exit_events", commit_exits)
        .field("commit_bytes_events", commit_bytes_events)
        .field("env_event_count", env_events)
        .field("total_rounds", totals.rounds)
        .field("total_messages", totals.messages)
        .field("total_node_rounds", totals.node_rounds)
        .field("total_commit_bytes", totals.commit_bytes)
        .field(
            "acceptance",
            Obj::new()
                .field(
                    "criterion",
                    "one event-stream digest across all nine DECO_THREADS x \
                     DECO_DELIVERY legs and bit-identical CommitReports between the \
                     null and recording probes (both hard-asserted above); the \
                     disabled-probe gate performs zero heap allocations \
                     (hard-asserted, counting allocator); wall medians are \
                     informational",
                )
                .field("met", true)
                .field("null_gate_allocs", gate_allocs)
                .field("null_commit_ms", null_med.as_secs_f64() * 1e3)
                .field("recording_commit_ms", rec_med.as_secs_f64() * 1e3)
                .field("null_commit_allocs", alloc_null)
                .field("recording_commit_allocs", alloc_rec)
                .build(),
        )
        .build();
    let out_path = std::env::var("DECO_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_pr8.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out_path, deco_bench::json::to_string(&json)).expect("write bench json");
    println!("wrote {out_path}");
}
