//! Export a workload, re-import it, color it, and verify the coloring
//! *distributedly* — the full lifecycle a downstream user of this library
//! walks through.
//!
//! Proper colorings are locally checkable labelings: one round of color
//! exchange lets every vertex certify its own neighborhood, so the
//! verification itself is a (trivial) LOCAL algorithm.
//!
//! Run with `cargo run --example verify_roundtrip [n] [delta] [seed]`.

use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::verify::{verify_edge_coloring, verify_vertex_coloring};
use deco_graph::{generators, io};
use deco_local::Network;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(500);
    let delta: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    // 1. Generate and serialize a workload.
    let g = generators::shuffle_idents(&generators::random_bounded_degree(n, delta, seed), seed);
    let text = io::to_edge_list(&g);
    println!(
        "serialized workload: n = {}, m = {}, Δ = {} ({} bytes of edge list)",
        g.n(),
        g.m(),
        g.max_degree(),
        text.len()
    );

    // 2. Re-import and check the round trip.
    let g2 = io::parse_edge_list(&text).expect("self-produced text parses");
    assert_eq!(g, g2, "serialization round trip must be exact");

    // 3. Color the edges.
    let run = edge_color(&g2, edge_log_depth(1), MessageMode::Long).expect("valid preset");
    println!(
        "colored: {} colors in {} rounds ({} levels)",
        run.coloring.palette_size(),
        run.stats.rounds,
        run.levels.len()
    );

    // 4. Verify distributedly: one round, every vertex certifies its edges.
    let net = Network::new(&g2);
    let (verdicts, stats) = verify_edge_coloring(&net, run.coloring.colors(), run.theta);
    let ok = verdicts.iter().all(|&b| b);
    println!(
        "distributed verification: {} in {} round ({} bits max message)",
        if ok { "ACCEPTED by every vertex" } else { "REJECTED" },
        stats.rounds,
        stats.max_message_bits
    );
    assert!(ok);

    // 5. Also demonstrate rejection: corrupt one edge color.
    let mut bad = run.coloring.colors().to_vec();
    if g2.m() >= 2 {
        bad[0] = bad[1];
        let (verdicts, _) = verify_edge_coloring(&net, &bad, run.theta);
        let rejecting = verdicts.iter().filter(|&&b| !b).count();
        println!("corrupted coloring: {rejecting} vertices reject (> 0 expected)");
        assert!(rejecting > 0 || !incident(&g2, 0, 1));
    }

    // Bonus: verify a vertex coloring too (the Δ+1 reduction).
    let (colors, _) = deco_core::reduction::delta_plus_one_coloring(&net);
    let (verdicts, _) = verify_vertex_coloring(&net, &colors, g2.max_degree() as u64 + 1);
    assert!(verdicts.iter().all(|&b| b));
    println!("(Δ+1)-vertex-coloring verified distributedly as well");
}

fn incident(g: &deco_graph::Graph, e: usize, f: usize) -> bool {
    let (a, b) = g.endpoints(e);
    let (c, d) = g.endpoints(f);
    a == c || a == d || b == c || b == d
}
