//! The `deco-serve` front end: host a fleet of synthetic tenants and
//! report deterministic per-tenant and fleet-wide results.
//!
//! ```text
//! deco-serve [--tenants K] [--shards S] [--commits C] [--n N] [--cap D]
//!            [--seed X] [--engine legacy|segmented|mix]
//!            [--compact-budget B] [--quota Q] [--verbose]
//!     Register K tenants, each over its own seeded churn trace
//!     (churn_trace(N, D, C commits)), stream every batch through the
//!     sharded worker pool, drain, verify every tenant's coloring, and
//!     print fleet totals plus the fleet fingerprint. The fingerprint is
//!     shard-count-invariant: re-run with any --shards value and it must
//!     not move.
//! ```

use deco_graph::trace::churn_trace;
use deco_serve::{EngineKind, Serve, ServeConfig, TenantSpec};
use std::process::ExitCode;

struct Args {
    tenants: usize,
    shards: usize,
    commits: usize,
    n: usize,
    cap: usize,
    seed: u64,
    engine: Option<EngineKind>, // None = mix
    compact_budget: u64,
    quota: u64,
    verbose: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: deco-serve [--tenants K] [--shards S] [--commits C] [--n N] [--cap D] \
         [--seed X] [--engine legacy|segmented|mix] [--compact-budget B] [--quota Q] \
         [--verbose]"
    );
    ExitCode::FAILURE
}

fn parse(args: &[String]) -> Option<Args> {
    let mut out = Args {
        tenants: 64,
        shards: 4,
        commits: 3,
        n: 48,
        cap: 4,
        seed: 0x5e12e,
        engine: None,
        compact_budget: 0,
        quota: 0,
        verbose: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--verbose" => out.verbose = true,
            "--engine" => match it.next().map(String::as_str)? {
                "legacy" => out.engine = Some(EngineKind::Legacy),
                "segmented" => out.engine = Some(EngineKind::Segmented),
                "mix" => out.engine = None,
                _ => return None,
            },
            flag => {
                let value = it.next()?;
                match flag {
                    "--tenants" => out.tenants = value.parse().ok()?,
                    "--shards" => out.shards = value.parse().ok()?,
                    "--commits" => out.commits = value.parse().ok()?,
                    "--n" => out.n = value.parse().ok()?,
                    "--cap" => out.cap = value.parse().ok()?,
                    "--seed" => out.seed = value.parse().ok()?,
                    "--compact-budget" => out.compact_budget = value.parse().ok()?,
                    "--quota" => out.quota = value.parse().ok()?,
                    _ => return None,
                }
            }
        }
    }
    Some(out)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(args) = parse(&raw) else {
        return usage();
    };
    let cfg = ServeConfig::default()
        .with_shards(args.shards)
        .with_cost_quota(args.quota)
        .with_compact_cost_budget(args.compact_budget);
    println!(
        "deco-serve: {} tenants x churn_trace(n={}, Δ≤{}, {} commits), {} shards",
        args.tenants, args.n, args.cap, args.commits, args.shards
    );
    let serve = Serve::start(cfg);

    // Register the fleet: per-tenant seeded traces, engines alternating
    // unless pinned.
    let traces: Vec<_> = (0..args.tenants)
        .map(|i| churn_trace(args.n, args.cap, args.commits, args.n / 12 + 1, args.seed ^ i as u64))
        .collect();
    let ids: Vec<_> = match traces
        .iter()
        .enumerate()
        .map(|(i, trace)| {
            let engine = args.engine.unwrap_or(if i % 2 == 0 {
                EngineKind::Legacy
            } else {
                EngineKind::Segmented
            });
            serve.register(TenantSpec::new(format!("tenant-{i}"), trace.n0).with_engine(engine))
        })
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(ids) => ids,
        Err(e) => {
            eprintln!("registration failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Stream every batch; the blocking path keeps the accepted stream
    // equal to the submitted stream whatever the worker backlog.
    // tidy: allow(wall-clock) — CLI throughput line (commits/sec) is
    // informational; fleet fingerprints are clock-free.
    let t0 = std::time::Instant::now();
    for (&id, trace) in ids.iter().zip(&traces) {
        for batch in trace.batches() {
            for &op in batch {
                if let Err(e) = serve.submit_blocking(id, op) {
                    eprintln!("tenant {id}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            if let Err(e) = serve.commit_blocking(id) {
                eprintln!("tenant {id}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    serve.drain();
    let wall = t0.elapsed();

    // Verify and summarize.
    let mut total_commits = 0usize;
    let mut total_cost = 0u64;
    let mut total_errors = 0usize;
    for &id in &ids {
        // INVARIANT: the id was returned by register() above and tenants are never removed from the fleet.
        let snap = serve.snapshot(id).expect("registered");
        if !snap.coloring.is_proper(&snap.graph) {
            eprintln!("tenant {id}: final coloring is not proper");
            return ExitCode::FAILURE;
        }
        total_commits += snap.commits;
        // INVARIANT: the id was returned by register() above and tenants are never removed from the fleet.
        total_cost += serve.cost(id).expect("registered");
        // INVARIANT: the id was returned by register() above and tenants are never removed from the fleet.
        total_errors += serve.errors(id).expect("registered").len();
        if args.verbose {
            println!(
                "  {}: {} commits, n={} m={} Δ={}, bound {}, fingerprint {:016x}",
                // INVARIANT: the id was returned by register() above and tenants are never removed from the fleet.
                serve.tenant_name(id).expect("registered"),
                snap.commits,
                snap.n,
                snap.m,
                snap.max_degree,
                snap.color_bound,
                snap.fingerprint()
            );
        }
    }
    let fingerprint = serve.fleet_fingerprint();
    serve.shutdown();
    println!(
        "{} commits, {} node-rounds admission cost, {} tenant errors in {:.1} ms \
         ({:.0} commits/s)",
        total_commits,
        total_cost,
        total_errors,
        wall.as_secs_f64() * 1e3,
        total_commits as f64 / wall.as_secs_f64().max(1e-9),
    );
    println!("fleet fingerprint {fingerprint:016x} (shard-count-invariant)");
    ExitCode::SUCCESS
}
