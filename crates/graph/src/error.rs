use std::error::Error;
use std::fmt;

/// Error raised while constructing a [`crate::Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    VertexOutOfRange {
        /// The offending endpoint.
        vertex: usize,
        /// The number of vertices in the graph under construction.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; the paper's model is simple graphs.
    SelfLoop {
        /// The vertex with the loop.
        vertex: usize,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// Lower endpoint of the duplicated edge.
        u: usize,
        /// Upper endpoint of the duplicated edge.
        v: usize,
    },
    /// Identifier list length does not match the vertex count.
    BadIdentCount {
        /// Number of identifiers supplied.
        got: usize,
        /// Number of vertices expected.
        expected: usize,
    },
    /// Identifiers must be pairwise distinct.
    DuplicateIdent {
        /// The identifier that appeared twice.
        ident: u64,
    },
    /// An edge scheduled for deletion does not exist (see
    /// [`crate::MutableGraph::delete_edge`]).
    MissingEdge {
        /// Lower endpoint of the missing edge.
        u: usize,
        /// Upper endpoint of the missing edge.
        v: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
            GraphError::DuplicateEdge { u, v } => write!(f, "duplicate edge ({u}, {v})"),
            GraphError::BadIdentCount { got, expected } => {
                write!(f, "got {got} identifiers, expected {expected}")
            }
            GraphError::DuplicateIdent { ident } => write!(f, "duplicate identifier {ident}"),
            GraphError::MissingEdge { u, v } => {
                write!(f, "edge ({u}, {v}) does not exist")
            }
        }
    }
}

impl Error for GraphError {}
