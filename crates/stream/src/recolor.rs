//! The incremental recoloring engine.
//!
//! [`Recolorer`] maintains a legal edge coloring of a mutating graph across
//! commit boundaries. The key observation is the paper's locality: in the
//! line graph, an edge insertion or deletion only invalidates colors inside
//! a bounded neighborhood of the touched edges, so repairing after a batch
//! costs `O(affected region)` — not `O(m)` — as long as the batch is small.
//!
//! # Repair algorithm
//!
//! After [`Recolorer::commit`] applies a batch (a delta-CSR patch via
//! [`deco_graph::MutableGraph`]: only touched adjacency is spliced, and the
//! patched snapshot is bit-identical to a rebuild) the engine:
//!
//! 1. **Carries colors** by stable edge slot: the commit's
//!    [`CommitDelta::edge_origin`](deco_graph::CommitDelta::edge_origin)
//!    map gives each new edge index its predecessor, so the carry is one
//!    indexed copy per edge — no endpoint-pair matching. (The pre-delta
//!    `O(m)` sorted-merge carry survives on the
//!    [`RecolorConfig::with_rebuild_commits`] oracle path.)
//! 2. **Extracts the repair region**: every uncolored edge, plus — only
//!    when the palette bound shrank (Δ decreased) — every edge whose
//!    carried color now falls outside it. Carried colors cannot conflict
//!    with each other (they come from a proper coloring of the previous
//!    snapshot and deletions never create conflicts), so no conflict sweep
//!    is needed; the region is exactly the delta plus bound evictions. The
//!    region's distance-1 line-graph boundary participates through
//!    forbidden-color masks, never as recolorable members.
//! 3. **Schedules** the region by running the paper's full
//!    defective-to-legal pipeline ([`edge_color_in_groups`], Theorem 5.5)
//!    on the sub-network induced by the region edges alone
//!    ([`Graph::edge_induced`]); the resulting legal sub-coloring is
//!    rank-compacted into consecutive *schedule classes*.
//! 4. **Finalizes** with one class per round on the same sub-network: both
//!    endpoints of a region edge exchange `O(Δ)`-bit [`Bitset`] masks of
//!    the colors already taken around them (fixed neighbors and earlier
//!    classes) and deterministically pick the smallest free color below
//!    `2Δ - 1`. Same-class edges are non-adjacent, so each round's picks
//!    are conflict-free; every region edge costs exactly two mask messages.
//!
//! If the region exceeds [`RecolorConfig::with_repair_threshold`] (percent of
//! `m`), repairing locally would approach the cost of a full run, so the
//! engine falls back to the from-scratch pipeline on the whole snapshot.
//!
//! # Determinism
//!
//! Everything above is a deterministic function of the committed topology:
//! same trace + seed ⇒ bit-identical colorings, [`CommitReport`]s and
//! [`RunStats`] at any thread count, any delivery mode and either engine —
//! the simulator's determinism contract extended end-to-end over mutation.
//!
//! # Faulty transports and self-stabilization
//!
//! [`RecolorConfig::with_transport`] plugs a [`deco_local::Transport`] under the
//! repair sub-networks. On the default perfect transport nothing changes —
//! the schedule-pipeline-plus-finalize path above runs bit-identically. On a
//! lossy transport (e.g. [`deco_local::FaultyTransport`]) the schedule
//! pipeline's rigid class-per-round cadence cannot survive dropped or late
//! masks, so the engine swaps in a **loss-tolerant priority protocol**
//! (`RobustFinalize`): every region message carries a snapshot-consistent
//! (taken-mask, min-undecided-priority, decided-color) triple, the lower
//! ident endpoint of each edge decides it once it is the minimum undecided
//! priority at *both* endpoints, and decided colors ride every subsequent
//! message, so drops only delay progress and can never produce a conflict.
//!
//! Self-stabilization wraps that protocol in a verified retry loop: each
//! attempt runs under a round cap that doubles per attempt
//! ([`RunError::RoundCapExceeded`] is absorbed, not propagated), the result
//! is merged tolerantly (disagreeing or missing replicas become uncolored)
//! and re-verified centrally, and any damage becomes the next attempt's
//! region. After [`RecolorConfig::with_max_repair_attempts`] failed attempts the
//! commit degrades to the fault-free from-scratch pipeline — the same reset
//! path compaction uses. The loop never panics and always terminates with a
//! verified-legal coloring; [`CommitReport::retries`] and
//! [`CommitReport::fallbacks`] account for it deterministically (the fate of
//! every message is a pure function of the transport seed, the slot and the
//! round).

use crate::config::RecolorConfig;
use crate::host::RegionHost;
use deco_core::edge::legal::{
    edge_color_bound, edge_color_in_groups, validate_edge_params, MessageMode,
};
use deco_core::params::{LegalParams, ParamError};
use deco_core::pipeline::{merge_edge_replicas, Pipeline};
use deco_graph::coloring::{Color, EdgeColoring};
use deco_graph::{EdgeIdx, Graph, GraphError, MutableGraph, Vertex};
use deco_local::{
    bits_for_value, Action, Bitset, Message, Network, NodeCtx, Protocol, RunError, RunStats,
};
use deco_probe::{Event, Probe};
use std::sync::Arc;

/// How a commit's repair was executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// Nothing to repair: every carried color is still valid.
    Clean,
    /// The repair-region sub-network was recolored in place.
    Incremental,
    /// The region exceeded the density threshold (or the graph had no
    /// coloring yet); the whole snapshot was recolored by the from-scratch
    /// pipeline.
    FromScratch,
}

impl std::fmt::Display for RepairStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RepairStrategy::Clean => "clean",
            RepairStrategy::Incremental => "incremental",
            RepairStrategy::FromScratch => "from-scratch",
        })
    }
}

/// Per-commit accounting returned by [`Recolorer::commit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitReport {
    /// 0-based commit index.
    pub commit: usize,
    /// Net edges inserted / deleted by the batch.
    pub inserted: usize,
    /// Net edges deleted by the batch.
    pub deleted: usize,
    /// Snapshot size after the commit.
    pub n: usize,
    /// Snapshot edge count after the commit.
    pub m: usize,
    /// Snapshot maximum degree after the commit.
    pub max_degree: usize,
    /// Repair-region size in edges (0 under [`RepairStrategy::Clean`]).
    pub dirty: usize,
    /// Vertices of the repair sub-network.
    pub region_vertices: usize,
    /// How the repair ran.
    pub strategy: RepairStrategy,
    /// Edges whose color was (re)assigned.
    pub recolored: usize,
    /// Schedule classes the finalize phase stepped through (incremental
    /// repairs only).
    pub schedule_classes: u64,
    /// The palette bound colors are kept under for this snapshot.
    pub color_bound: u64,
    /// Failed repair attempts that were retried under a faulty transport
    /// (always 0 on the default perfect transport; module docs).
    pub retries: u32,
    /// 1 when every bounded retry failed and the commit degraded to the
    /// fault-free from-scratch pipeline, else 0.
    pub fallbacks: u32,
    /// Simulator statistics of all repair phases of this commit.
    pub stats: RunStats,
}

/// Sentinel for "no color yet" in the engine's dense color store. Real
/// colors are bounded by ϑ ≤ 2Δ-1, nowhere near it; a sentinel keeps the
/// per-edge slot at 8 bytes (`Option<Color>` would double it, and the
/// carry pass streams the whole store every commit).
pub(crate) const UNCOLORED: Color = Color::MAX;

/// Incremental recoloring engine over a mutating graph. See module docs.
#[derive(Debug, Clone)]
pub struct Recolorer {
    mg: MutableGraph,
    /// Color per snapshot edge; no [`UNCOLORED`] entries between commits.
    colors: Vec<Color>,
    params: LegalParams,
    mode: MessageMode,
    /// Every per-instance knob — threshold, compaction cadence, oracle
    /// path, early halting, transport, retry budget, probe,
    /// threads/delivery. The probe is shared with the inner
    /// [`MutableGraph`] and every repair sub-network so commit decisions,
    /// phase spans and round samples land in one stream.
    cfg: RecolorConfig,
    commits: usize,
    /// Palette bound of the previous snapshot: every committed color is
    /// below it, so the out-of-palette sweep only runs when the bound
    /// shrinks past it (0 before the first commit — no constraint).
    prev_bound: u64,
    /// A pending [`Recolorer::request_compaction`], consumed by the next
    /// successful commit.
    force_compaction: bool,
}

impl Recolorer {
    /// An engine over an initially edgeless graph with `n0` vertices, with
    /// the default [`RecolorConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `params` cannot contract (the same
    /// validation as the one-shot pipeline).
    pub fn new(n0: usize, params: LegalParams, mode: MessageMode) -> Result<Recolorer, ParamError> {
        Recolorer::new_with(n0, params, mode, RecolorConfig::default())
    }

    /// An engine over an initially edgeless graph with `n0` vertices and
    /// the given per-instance configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `params` cannot contract.
    pub fn new_with(
        n0: usize,
        params: LegalParams,
        mode: MessageMode,
        cfg: RecolorConfig,
    ) -> Result<Recolorer, ParamError> {
        validate_edge_params(&params)?;
        let mut mg = MutableGraph::new(n0);
        mg.set_probe(Arc::clone(&cfg.probe));
        Ok(Recolorer {
            mg,
            colors: Vec::new(),
            params,
            mode,
            cfg,
            commits: 0,
            prev_bound: 0,
            force_compaction: false,
        })
    }

    /// An engine over an existing graph, with the default
    /// [`RecolorConfig`]. The initial coloring runs from scratch at the
    /// first [`Recolorer::commit`] (queue an empty batch to force it
    /// immediately).
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `params` cannot contract.
    pub fn from_graph(
        g: Graph,
        params: LegalParams,
        mode: MessageMode,
    ) -> Result<Recolorer, ParamError> {
        Recolorer::from_graph_with(g, params, mode, RecolorConfig::default())
    }

    /// An engine over an existing graph with the given per-instance
    /// configuration. The initial coloring runs from scratch at the first
    /// [`Recolorer::commit`].
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] if `params` cannot contract.
    pub fn from_graph_with(
        g: Graph,
        params: LegalParams,
        mode: MessageMode,
        cfg: RecolorConfig,
    ) -> Result<Recolorer, ParamError> {
        validate_edge_params(&params)?;
        let m = g.m();
        let mut mg = MutableGraph::from_graph(g);
        mg.set_probe(Arc::clone(&cfg.probe));
        Ok(Recolorer {
            mg,
            colors: vec![UNCOLORED; m],
            params,
            mode,
            cfg,
            commits: 0,
            prev_bound: 0,
            force_compaction: false,
        })
    }

    /// The engine's per-instance configuration.
    pub fn config(&self) -> &RecolorConfig {
        &self.cfg
    }

    /// Re-points the engine's structured event sink mid-life (shared with
    /// the commit machinery and every subsequent repair sub-network).
    /// Construction-time attachment goes through
    /// [`RecolorConfig::with_probe`]; this setter exists for callers that
    /// warm an engine first and start observing later. Every
    /// [`Recolorer::commit`] emits its decision trail —
    /// `CommitEnter`/`Region`/`Strategy`/`Retry`/`Fallback`/`Compaction`/
    /// `CommitExit` — plus the commit machinery's `CommitBytes` (emitted
    /// *before* the commit's `CommitEnter` because the graph layer runs
    /// first) and the repairs' phase spans and round samples, all in one
    /// stream. Deterministic events are bit-identical across thread counts
    /// and delivery modes; see the [`Probe`] determinism contract.
    pub fn set_probe(&mut self, probe: Arc<dyn Probe>) {
        self.mg.set_probe(Arc::clone(&probe));
        self.cfg.probe = probe;
    }

    /// Replaces the engine's whole configuration mid-life (probe
    /// included, re-pointed as by [`Self::set_probe`]). Knobs are read at
    /// commit time, so the new settings govern every subsequent commit;
    /// past commits are obviously unaffected. The idiomatic use is
    /// cloning a warmed engine and re-running it under different knobs:
    /// `engine.config().clone().with_early_halt(false)` and so on.
    pub fn set_config(&mut self, cfg: RecolorConfig) {
        self.mg.set_probe(Arc::clone(&cfg.probe));
        self.cfg = cfg;
    }

    /// Requests a palette compaction: the next successful commit runs the
    /// from-scratch pipeline even if its batch alone would be clean. See
    /// [`crate::RegionRecolor::request_compaction`].
    pub fn request_compaction(&mut self) {
        self.force_compaction = true;
    }

    /// The engine's event sink.
    pub fn probe(&self) -> &Arc<dyn Probe> {
        &self.cfg.probe
    }

    /// The current committed snapshot.
    pub fn graph(&self) -> &Graph {
        self.mg.graph()
    }

    /// Commits applied so far.
    pub fn commits(&self) -> usize {
        self.commits
    }

    /// The current coloring (valid after every commit).
    ///
    /// # Panics
    ///
    /// Panics if called before the first commit on a [`Recolorer::from_graph`]
    /// engine (the initial coloring has not run yet).
    pub fn coloring(&self) -> EdgeColoring {
        EdgeColoring::new(
            self.colors
                .iter()
                .map(|&c| {
                    assert_ne!(c, UNCOLORED, "coloring is complete between commits");
                    c
                })
                .collect(),
        )
    }

    /// The palette bound the current snapshot's colors are kept under:
    /// the from-scratch pipeline's ϑ for the snapshot's Δ (never below the
    /// greedy repair cap `2Δ - 1`).
    pub fn color_bound(&self) -> u64 {
        Recolorer::bound_for(&self.params, self.graph().max_degree() as u64)
    }

    pub(crate) fn bound_for(params: &LegalParams, delta: u64) -> u64 {
        edge_color_bound(params, delta).max(2 * delta.max(1) - 1)
    }

    /// Queues insertion of edge `(u, v)` for the next commit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MutableGraph::insert_edge`].
    pub fn insert_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        self.mg.insert_edge(u, v)
    }

    /// Queues deletion of edge `(u, v)` for the next commit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MutableGraph::delete_edge`].
    pub fn delete_edge(&mut self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        self.mg.delete_edge(u, v)
    }

    /// Queues addition of one vertex; returns its index.
    pub fn add_vertex(&mut self) -> Vertex {
        self.mg.add_vertex()
    }

    /// Queues an identifier override.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MutableGraph::set_ident`].
    pub fn set_ident(&mut self, v: Vertex, ident: u64) -> Result<(), GraphError> {
        self.mg.set_ident(v, ident)
    }

    /// Queues a shrink compaction: isolated vertices are dropped and the
    /// survivors renumbered at this point of the batch. Colors are carried
    /// through the renumbering (no edge is touched, so a shrink-only commit
    /// is clean). See [`MutableGraph::shrink_isolated`].
    pub fn shrink_isolated(&mut self) {
        self.mg.shrink_isolated()
    }

    /// Applies the queued batch and repairs the coloring. See module docs.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the batch is invalid; the previous
    /// snapshot and coloring are untouched and the batch is discarded.
    pub fn commit(&mut self) -> Result<CommitReport, GraphError> {
        // The oracle path captures the pre-commit edge list for its
        // endpoint-pair carry; the delta path needs nothing of the sort.
        let old_edges: Vec<(Vertex, Vertex)> =
            if self.cfg.rebuild_commits { self.mg.graph().edges().collect() } else { Vec::new() };
        let old_colors = std::mem::take(&mut self.colors);
        let committed =
            if self.cfg.rebuild_commits { self.mg.commit_rebuild() } else { self.mg.commit() };
        let delta = match committed {
            Ok(d) => d,
            Err(e) => {
                self.colors = old_colors;
                return Err(e);
            }
        };
        let g = self.mg.graph();
        let m = g.m();

        // 1 + 2. Carry colors across the commit and find the repair region.
        // Default path: one stable-slot gather per edge (the origin map
        // already crossed any renumbering), with uncolored edges collected
        // on the fly — the region *is* the delta, because carried colors
        // cannot conflict with each other (module docs) and out-of-palette
        // evictions are only possible when the bound shrank. Oracle path:
        // the PR 3 endpoint-pair merge plus full dirty sweeps (they find
        // exactly the same set; kept as the faithful cost baseline).
        let bound = Recolorer::bound_for(&self.params, g.max_degree() as u64);
        let (colors, dirty, legacy_is_dirty): (Vec<Color>, Vec<EdgeIdx>, Option<Vec<bool>>) =
            if self.cfg.rebuild_commits {
                let mut colors: Vec<Color> = vec![UNCOLORED; m];
                if delta.vertex_map.is_none() {
                    let mut old_i = 0usize;
                    for (e, (u, v)) in g.edges().enumerate() {
                        while old_i < old_edges.len() && old_edges[old_i] < (u, v) {
                            old_i += 1;
                        }
                        if old_i < old_edges.len() && old_edges[old_i] == (u, v) {
                            colors[e] = old_colors[old_i];
                            old_i += 1;
                        }
                    }
                } else {
                    // Renumbered (shrink): endpoint matching is meaningless,
                    // even the oracle carries by origin.
                    for (e, &src) in delta.edge_origin.iter().enumerate() {
                        if src != Graph::NO_EDGE_ORIGIN {
                            colors[e] = old_colors[src as usize];
                        }
                    }
                }
                let mut is_dirty = vec![false; m];
                for (e, &c) in colors.iter().enumerate() {
                    if c == UNCOLORED || c >= bound {
                        is_dirty[e] = true;
                    }
                }
                let mut incident: Vec<(Color, EdgeIdx)> = Vec::new();
                for v in 0..g.n() {
                    incident.clear();
                    incident.extend(
                        g.incident(v)
                            .filter(|&(_, e)| colors[e] != UNCOLORED)
                            .map(|(_, e)| (colors[e], e)),
                    );
                    incident.sort_unstable();
                    for w in incident.windows(2) {
                        if w[0].0 == w[1].0 {
                            is_dirty[w[0].1] = true;
                            is_dirty[w[1].1] = true;
                        }
                    }
                }
                let dirty: Vec<EdgeIdx> = (0..m).filter(|&e| is_dirty[e]).collect();
                (colors, dirty, Some(is_dirty))
            } else {
                // One gather per edge; the region falls out of the same
                // pass. The eviction compare only matters when Δ shrank,
                // but it is a register compare — branch on it once.
                let evict_above = if bound < self.prev_bound { bound } else { UNCOLORED };
                let mut colors: Vec<Color> = Vec::with_capacity(m);
                let mut dirty: Vec<EdgeIdx> = Vec::new();
                for (e, &src) in delta.edge_origin.iter().enumerate() {
                    let c = if src == Graph::NO_EDGE_ORIGIN {
                        UNCOLORED
                    } else {
                        old_colors[src as usize]
                    };
                    if c >= evict_above {
                        dirty.push(e);
                    }
                    colors.push(c);
                }
                (colors, dirty, None)
            };
        let mut colors = colors;

        let commit = self.commits;
        self.commits += 1;
        let mut report = CommitReport {
            commit,
            inserted: delta.inserted.len(),
            deleted: delta.deleted.len(),
            n: g.n(),
            m,
            max_degree: g.max_degree(),
            dirty: dirty.len(),
            region_vertices: 0,
            strategy: RepairStrategy::Clean,
            recolored: 0,
            schedule_classes: 0,
            color_bound: bound,
            retries: 0,
            fallbacks: 0,
            stats: RunStats::zero(),
        };
        // A due compaction overrides everything below: even a clean commit
        // re-runs the pipeline to squeeze the drifted palette back to ϑ.
        // Scheduled cadence and a pending request_compaction both qualify;
        // the request is consumed by this (successful) commit either way.
        let cadence_due =
            self.cfg.compaction_every > 0 && (commit + 1) % self.cfg.compaction_every == 0;
        let compact = (cadence_due || self.force_compaction) && m > 0;
        self.force_compaction = false;
        emit_commit_open(&self.cfg.probe, &report, compact);
        if dirty.is_empty() && !compact {
            self.colors = colors;
            self.prev_bound = bound;
            report.stats.commit_bytes = delta.commit_bytes;
            emit_strategy(&self.cfg.probe, commit, RepairStrategy::Clean);
            emit_commit_close(&self.cfg.probe, &report);
            return Ok(report);
        }

        // 3+4. Repair, or fall back when the region is too dense (or a
        // compaction commit is due).
        let from_scratch =
            compact || dirty.len() as u64 * 100 >= m as u64 * u64::from(self.cfg.threshold_pct);
        if from_scratch {
            emit_strategy(&self.cfg.probe, commit, RepairStrategy::FromScratch);
            let (new_colors, stats) = full_recolor(g, self.params, self.mode, &self.cfg);
            report.strategy = RepairStrategy::FromScratch;
            report.recolored = m;
            report.stats = stats;
            self.colors = new_colors;
        } else if self.cfg.transport.is_perfect() {
            // The boundary-mask pass needs the membership predicate; the
            // fast path derives it from the dirty list on demand (the
            // oracle already has it from its sweeps).
            let is_dirty = legacy_is_dirty.unwrap_or_else(|| {
                let mut flags = vec![false; m];
                for &e in &dirty {
                    flags[e] = true;
                }
                flags
            });
            emit_strategy(&self.cfg.probe, commit, RepairStrategy::Incremental);
            let (stats, classes, region_vertices) =
                repair_region(g, &dirty, &is_dirty, &mut colors, self.params, self.mode, &self.cfg);
            report.strategy = RepairStrategy::Incremental;
            report.recolored = dirty.len();
            report.schedule_classes = classes;
            report.region_vertices = region_vertices;
            report.stats = stats;
            self.colors = colors;
        } else {
            // Faulty transport: the loss-tolerant self-stabilizing path
            // (module docs). Writes into `colors` (possibly wholesale, on a
            // from-scratch fallback) and accounts into `report`. The probe
            // records the *decision* here; the exit event carries the
            // strategy the attempts actually ended on.
            emit_strategy(&self.cfg.probe, commit, RepairStrategy::Incremental);
            resilient_repair(
                g,
                &dirty,
                &mut colors,
                self.params,
                self.mode,
                &self.cfg,
                &mut report,
            );
            self.colors = colors;
        }
        debug_assert!(self.colors.iter().all(|&c| c < bound));
        self.prev_bound = bound;
        // The repair branches overwrite `report.stats` wholesale with the
        // simulator's accounting; fold the commit machinery's byte count
        // in afterwards so every exit reports it.
        report.stats.commit_bytes = delta.commit_bytes;
        emit_commit_close(&self.cfg.probe, &report);
        Ok(report)
    }
}

/// Opens a commit's probe span: `CommitEnter` with the batch and snapshot
/// shape, the extracted `Region`, and a `Compaction` marker when the
/// commit is a scheduled palette compaction. Shared by both recoloring
/// engines; a no-op on a disabled probe.
pub(crate) fn emit_commit_open(probe: &Arc<dyn Probe>, report: &CommitReport, compact: bool) {
    if !probe.enabled() {
        return;
    }
    let commit = report.commit as u64;
    probe.emit(Event::CommitEnter {
        commit,
        inserted: report.inserted as u64,
        deleted: report.deleted as u64,
        n: report.n as u64,
        m: report.m as u64,
        max_degree: report.max_degree as u64,
    });
    probe.emit(Event::Region { commit, dirty: report.dirty as u64 });
    if compact {
        probe.emit(Event::Compaction { commit });
    }
}

/// Records the repair-strategy *decision* for a commit (the exit event
/// carries the strategy the commit actually ended on, which differs only
/// when a fault-era repair degraded to from-scratch).
pub(crate) fn emit_strategy(probe: &Arc<dyn Probe>, commit: usize, strategy: RepairStrategy) {
    if probe.enabled() {
        probe
            .emit(Event::Strategy { commit: commit as u64, strategy: strategy.to_string().into() });
    }
}

/// Closes a commit's probe span: `CommitExit` mirroring the
/// [`CommitReport`], followed by a snapshot of the process-global message
/// [`spill`](deco_local::spill) arena as `Env` events (cumulative process
/// counters — excluded from determinism digests like every `Env` event,
/// since unrelated threads may also spill).
pub(crate) fn emit_commit_close(probe: &Arc<dyn Probe>, report: &CommitReport) {
    if !probe.enabled() {
        return;
    }
    probe.emit(Event::CommitExit {
        commit: report.commit as u64,
        strategy: report.strategy.to_string().into(),
        recolored: report.recolored as u64,
        schedule_classes: report.schedule_classes,
        color_bound: report.color_bound,
        region_vertices: report.region_vertices as u64,
        retries: u64::from(report.retries),
        fallbacks: u64::from(report.fallbacks),
        stats: report.stats.into(),
    });
    let spill = deco_local::spill::stats();
    probe.emit(Event::env("spill_allocated_chunks", spill.allocated_chunks.to_string()));
    probe.emit(Event::env("spill_allocated_bytes", spill.allocated_bytes.to_string()));
}

/// Runs the incremental **repair phase** — the Theorem 5.5 schedule
/// pipeline on the edge-induced region sub-network followed by the
/// class-per-round finalize protocol (module docs, steps 3 and 4) — for
/// the given `dirty` edges of `g`, in place.
///
/// `colors` must hold one entry per edge of `g` with every *non-dirty*
/// entry carrying its committed color (dirty entries are ignored and
/// overwritten). This is exactly the phase [`Recolorer::commit`] executes
/// on an incremental repair; it is public so differential benches can time
/// the repair phase in isolation (`early_halt` selects the
/// [`Network::with_early_halt`] mode — results are bit-identical either
/// way, only round counters move).
///
/// Returns the combined repair stats, the schedule class count and the
/// sub-network's vertex count.
///
/// # Panics
///
/// Panics if `colors.len() != g.m()` or a dirty index is out of range.
pub fn repair_phase(
    g: &Graph,
    dirty: &[EdgeIdx],
    colors: &mut [Color],
    params: LegalParams,
    mode: MessageMode,
    early_halt: bool,
) -> (RunStats, u64, usize) {
    assert_eq!(colors.len(), g.m(), "one color slot per edge");
    let mut is_dirty = vec![false; g.m()];
    for &e in dirty {
        is_dirty[e] = true;
    }
    let cfg = RecolorConfig::default().with_early_halt(early_halt);
    repair_region(g, dirty, &is_dirty, colors, params, mode, &cfg)
}

/// Builds a network over `g` with the instance's settings applied: early
/// halting, the shared probe, and — when pinned in the config — the
/// worker-thread budget and delivery mode. The transport is *not* applied
/// here; the resilient path adds it explicitly, and the from-scratch
/// pipeline deliberately stays on the perfect in-process default.
pub(crate) fn instance_net<'g>(g: &'g Graph, cfg: &RecolorConfig) -> Network<'g> {
    let mut net =
        Network::new(g).with_early_halt(cfg.early_halt).with_probe(Arc::clone(&cfg.probe));
    if let Some(threads) = cfg.threads {
        net = net.with_threads(threads);
    }
    if let Some(delivery) = cfg.delivery {
        net = net.with_delivery(delivery);
    }
    net
}

/// Recolors exactly the `dirty` edges of `g` in place: pipeline schedule on
/// the edge-induced sub-network, then the class-per-round finalize protocol
/// (module docs, steps 3 and 4). Returns the combined repair stats, the
/// schedule class count and the sub-network's vertex count.
///
/// Generic over the [`RegionHost`] seam: `dirty` holds host edge handles,
/// `is_dirty`/`colors` are handle-indexed ([`RegionHost::edge_bound`]
/// sized). Both hosts extract byte-identical region sub-networks, so the
/// repair outcome is independent of the host representation. The config
/// supplies the early-halt flag, the probe and any pinned
/// threads/delivery; its transport and thresholds are the caller's
/// business.
pub(crate) fn repair_region<H: RegionHost>(
    g: &H,
    dirty: &[EdgeIdx],
    is_dirty: &[bool],
    colors: &mut [Color],
    params: LegalParams,
    mode: MessageMode,
    cfg: &RecolorConfig,
) -> (RunStats, u64, usize) {
    let (sub, vmap, emap) = g.region_subgraph(dirty);
    // The pipeline's symmetry breaking assumes identifiers from {1, ..., n}
    // (Cole–Vishkin's initial palette is the ident domain), but
    // `edge_induced` inherits host identifiers that can exceed the region
    // size. Rank-renumber them: order-preserving, so the sub-network's
    // symmetry breaking stays a deterministic function of the host's.
    let mut rank: Vec<usize> = (0..sub.n()).collect();
    rank.sort_unstable_by_key(|&v| sub.ident(v));
    let mut dense = vec![0u64; sub.n()];
    for (r, &v) in rank.iter().enumerate() {
        dense[v] = r as u64 + 1;
    }
    // INVARIANT: the identifier list is distinct by construction, so re-labelling cannot fail.
    let sub = sub.with_idents(dense).expect("ranks are distinct");
    let cap = 2 * g.host_max_degree().max(1) as u64 - 1;

    // Schedule: the paper's pipeline on the region alone. The probe rides
    // the sub-network so the repair's phase spans and round samples land in
    // the caller's event stream.
    let subnet = instance_net(&sub, cfg);
    let groups = vec![0u64; sub.m()];
    let run = edge_color_in_groups(&subnet, &groups, 1, params, sub.max_degree() as u64, mode)
        // INVARIANT: RecolorConfig parameters were validated when the engine was constructed.
        .expect("params validated at construction");

    // Rank-compact the schedule so finalize rounds track the region, not ϑ.
    let mut palette: Vec<Color> = run.coloring.colors().to_vec();
    palette.sort_unstable();
    palette.dedup();
    let classes = palette.len() as u64;
    let class_of: Vec<u64> = run
        .coloring
        .colors()
        .iter()
        // INVARIANT: the palette is assembled from all region colors including this edge's own.
        .map(|c| palette.binary_search(c).expect("own color is in the palette") as u64)
        .collect();

    // Forbidden masks: colors of the *fixed* incident host edges — the
    // repair region's line-graph boundary.
    let fixed_masks: Vec<Bitset> = vmap
        .iter()
        .map(|&host_v| {
            let mut mask = Bitset::new(cap as usize);
            g.for_each_incident(host_v, &mut |_, e| {
                if !is_dirty[e] {
                    let c = colors[e];
                    if c != UNCOLORED && c < cap {
                        mask.insert(c);
                    }
                }
            });
            mask
        })
        .collect();

    let mut pl = Pipeline::new(&subnet);
    pl.absorb("repair/schedule-pipeline", run.stats);
    let outputs = pl.run("repair/finalize", |ctx| {
        let edges = sub
            .incident(ctx.vertex)
            .map(|(nbr, e)| FinalizeEdge { nbr, eid: e, class: class_of[e], color: None })
            .collect();
        Finalize { cap, taken: fixed_masks[ctx.vertex].clone(), edges }
    });
    let finals = merge_edge_replicas(sub.m(), &outputs, "repair color");
    for (sub_e, &c) in finals.iter().enumerate() {
        debug_assert!(c < cap, "finalize must stay below the greedy cap");
        colors[emap[sub_e]] = c;
    }
    (pl.into_stats(), classes, sub.n())
}

/// The from-scratch pipeline on the whole snapshot — the shared reset path
/// of threshold fallbacks, compaction commits and exhausted fault-era
/// retries. Always runs on the default in-process transport (it models a
/// centralized rebuild), but honors the instance's early-halt, probe and
/// pinned threads/delivery.
pub(crate) fn full_recolor(
    g: &Graph,
    params: LegalParams,
    mode: MessageMode,
    cfg: &RecolorConfig,
) -> (Vec<Color>, RunStats) {
    let net = instance_net(g, cfg);
    let groups = vec![0u64; g.m()];
    let run = edge_color_in_groups(&net, &groups, 1, params, g.max_degree() as u64, mode)
        // INVARIANT: RecolorConfig parameters were validated when the engine was constructed.
        .expect("params validated at construction");
    debug_assert!(run.theta <= Recolorer::bound_for(&params, g.max_degree() as u64));
    (run.coloring.into_colors(), run.stats)
}

/// The self-stabilizing repair loop for commits over a faulty
/// [`deco_local::Transport`]
/// (module docs): per attempt, run the loss-tolerant [`RobustFinalize`]
/// protocol on the current region's sub-network under an exponentially
/// growing round cap, merge the per-endpoint replicas tolerantly, verify
/// the region centrally, and make any damage the next attempt's region.
/// After [`RecolorConfig::max_attempts`] failed attempts the commit
/// degrades to the fault-free from-scratch pipeline, so the loop always
/// terminates with a verified-legal coloring and never panics on transport
/// faults. The config supplies the transport, the attempt budget, the
/// early-halt flag, the probe and any pinned threads/delivery.
pub(crate) fn resilient_repair<H: RegionHost>(
    g: &H,
    dirty: &[EdgeIdx],
    colors: &mut Vec<Color>,
    params: LegalParams,
    mode: MessageMode,
    cfg: &RecolorConfig,
    report: &mut CommitReport,
) {
    let (max_attempts, probe) = (cfg.max_attempts, &cfg.probe);
    let cap = 2 * g.host_max_degree().max(1) as u64 - 1;
    let target = dirty.len();
    let commit = report.commit as u64;
    let mut dirty: Vec<EdgeIdx> = dirty.to_vec();
    for attempt in 0..max_attempts {
        let (sub, vmap, emap) = g.region_subgraph(&dirty);
        report.region_vertices = report.region_vertices.max(sub.n());
        let mut is_dirty = vec![false; g.edge_bound()];
        for &e in &dirty {
            is_dirty[e] = true;
        }
        // Forbidden masks: committed colors of the fixed incident host
        // edges — the region's line-graph boundary, exactly as on the
        // perfect-transport path.
        let fixed_masks: Vec<Bitset> = vmap
            .iter()
            .map(|&host_v| {
                let mut mask = Bitset::new(cap as usize);
                g.for_each_incident(host_v, &mut |_, e| {
                    if !is_dirty[e] {
                        let c = colors[e];
                        if c != UNCOLORED && c < cap {
                            mask.insert(c);
                        }
                    }
                });
                mask
            })
            .collect();
        // Exponential backoff: a failed attempt retries with double the
        // round budget, so slow-but-live executions (many delays) get the
        // rounds they need while genuine livelocks stay bounded.
        let round_cap = (16 + 4 * dirty.len()) << attempt;
        let subnet = instance_net(&sub, cfg)
            .with_transport(Arc::clone(&cfg.transport))
            .with_round_cap(round_cap);
        let outcome = subnet.try_run_profiled(|ctx| {
            let edges = sub
                .incident(ctx.vertex)
                .map(|(nbr, e)| RobustEdge {
                    nbr,
                    eid: e,
                    // A pair-ordered total order on the region; identical
                    // comparisons on either host (`RegionHost::robust_prio`).
                    prio: g.robust_prio(emap[e], e),
                    leader: sub.ident(ctx.vertex) < sub.ident(nbr),
                    color: None,
                    peer_mask: None,
                    peer_min: 0,
                    announced: 0,
                })
                .collect();
            RobustFinalize { cap, taken: fixed_masks[ctx.vertex].clone(), edges }
        });
        let run = match outcome {
            Ok((run, _profile)) => run,
            Err(RunError::RoundCapExceeded { stats, .. }) => {
                report.stats += stats;
                report.retries += 1;
                if probe.enabled() {
                    probe.emit(Event::Retry {
                        commit,
                        attempt: u64::from(attempt),
                        round_cap: round_cap as u64,
                    });
                }
                continue;
            }
            Err(_) => {
                report.retries += 1;
                if probe.enabled() {
                    probe.emit(Event::Retry {
                        commit,
                        attempt: u64::from(attempt),
                        round_cap: round_cap as u64,
                    });
                }
                continue;
            }
        };
        report.stats += run.stats;
        // Tolerant replica merge: an edge keeps its color only when both
        // endpoints report the same decided value; anything else —
        // undecided, missing or disagreeing — becomes uncolored damage.
        let mut replicas: Vec<Vec<Option<Color>>> = vec![Vec::new(); sub.m()];
        for outputs in &run.outputs {
            for &(e, c) in outputs {
                replicas[e].push(c);
            }
        }
        for (sub_e, reps) in replicas.iter().enumerate() {
            colors[emap[sub_e]] = match reps.as_slice() {
                [Some(a), Some(b)] if a == b && *a < cap => *a,
                _ => UNCOLORED,
            };
        }
        // Central verification over the region: re-dirty every region edge
        // that is uncolored or conflicts with an incident edge (a conflict
        // against the fixed boundary re-dirties the region side only).
        let mut flagged = vec![false; g.edge_bound()];
        let mut new_dirty: Vec<EdgeIdx> = Vec::new();
        let mut incident: Vec<(Color, EdgeIdx)> = Vec::new();
        for &host_v in &vmap {
            incident.clear();
            g.for_each_incident(host_v, &mut |_, e| {
                if colors[e] != UNCOLORED {
                    incident.push((colors[e], e));
                }
            });
            incident.sort_unstable();
            for w in incident.windows(2) {
                if w[0].0 == w[1].0 {
                    for &(_, e) in &w[..2] {
                        if is_dirty[e] && !flagged[e] {
                            flagged[e] = true;
                            new_dirty.push(e);
                        }
                    }
                }
            }
        }
        for &e in &dirty {
            if colors[e] == UNCOLORED && !flagged[e] {
                flagged[e] = true;
                new_dirty.push(e);
            }
        }
        if new_dirty.is_empty() {
            report.strategy = RepairStrategy::Incremental;
            report.recolored = target;
            return;
        }
        for &e in &new_dirty {
            colors[e] = UNCOLORED;
        }
        new_dirty.sort_unstable();
        dirty = new_dirty;
        report.retries += 1;
        if probe.enabled() {
            probe.emit(Event::Retry {
                commit,
                attempt: u64::from(attempt),
                round_cap: round_cap as u64,
            });
        }
    }
    // Budget exhausted: degrade to the fault-free pipeline (the compaction
    // reset path). Guaranteed legal; the commit still never panics.
    if probe.enabled() {
        probe.emit(Event::Fallback { commit });
    }
    let stats = g.full_recolor_into(colors, params, mode, cfg);
    report.strategy = RepairStrategy::FromScratch;
    report.recolored = g.live_m();
    report.fallbacks = 1;
    report.stats += stats;
}

/// One region message of [`RobustFinalize`]. The three fields are a
/// snapshot of the sender at send time, so a receiver acting on the latest
/// message always sees a mask consistent with the reported minimum —
/// reordered or dropped messages can delay decisions but never unsound
/// ones.
#[derive(Debug, Clone)]
struct RobustMsg {
    /// Colors taken around the sender (fixed boundary + decided edges).
    mask: Bitset,
    /// Smallest priority among the sender's undecided edges (`u64::MAX`
    /// when all are decided).
    min_undecided: u64,
    /// The decided color of the edge this message rides on, if any: the
    /// follower endpoint adopts it, and it rides every later message so a
    /// dropped announcement is retried implicitly.
    color: Option<Color>,
}

impl Message for RobustMsg {
    fn size_bits(&self) -> usize {
        self.mask.size_bits()
            + bits_for_value(self.min_undecided)
            + 1
            + self.color.map_or(0, bits_for_value)
    }
}

/// Per-edge state of [`RobustFinalize`].
#[derive(Debug)]
struct RobustEdge {
    nbr: Vertex,
    eid: EdgeIdx,
    /// Host edge index: the globally unique decision priority.
    prio: u64,
    /// Whether this endpoint decides the edge (smaller identifier).
    leader: bool,
    color: Option<Color>,
    /// Latest mask heard from the peer (never heard: blocks deciding).
    peer_mask: Option<Bitset>,
    /// `min_undecided` of the latest message heard from the peer.
    peer_min: u64,
    /// Rounds the decided color has been re-announced so far.
    announced: u32,
}

/// Rounds a decided edge keeps announcing its color before going silent:
/// enough redundancy that losing every announcement (and with it the
/// follower's adoption) needs this many consecutive per-slot drops.
const REANNOUNCE: u32 = 4;

/// The loss-tolerant region finalize protocol (module docs, faulty
/// transports). Unlike [`Finalize`] it assumes nothing about message
/// timing: each edge is decided by its leader endpoint once its priority is
/// the minimum undecided priority at *both* endpoints, from the union of
/// both endpoints' taken-masks. Because a message's mask and reported
/// minimum are snapshot-consistent, a decision's mask union provably
/// contains the colors of every lower-priority incident edge — drops,
/// delays and reordering can stall progress (bounded by the caller's round
/// cap) but never produce a conflict. The protocol itself never panics;
/// incomplete executions surface as unmerged replicas for the caller's
/// verifier.
#[derive(Debug)]
struct RobustFinalize {
    cap: u64,
    /// Colors taken around this vertex: fixed boundary edges plus own
    /// region edges decided or adopted so far.
    taken: Bitset,
    edges: Vec<RobustEdge>,
}

impl RobustFinalize {
    fn min_undecided(&self) -> u64 {
        self.edges.iter().filter(|e| e.color.is_none()).map(|e| e.prio).min().unwrap_or(u64::MAX)
    }

    /// Decides every leader edge that is currently the minimum undecided
    /// priority at both endpoints, to a fixpoint (a decision can unlock the
    /// next own-minimum in the same round).
    fn decide(&mut self) {
        loop {
            let own_min = self.min_undecided();
            let Some(i) = self.edges.iter().position(|e| {
                e.leader
                    && e.color.is_none()
                    && e.prio == own_min
                    && e.peer_mask.is_some()
                    && e.prio <= e.peer_min
            }) else {
                return;
            };
            let mut union = self.taken.clone();
            // INVARIANT: peer_mask presence was checked in the guard above.
            union.union_with(self.edges[i].peer_mask.as_ref().expect("checked above"));
            let c = union.first_absent();
            if c >= self.cap {
                // Defensively impossible for a simple graph (≤ 2Δ-2 taken
                // colors below the cap); leave undecided for the verifier.
                return;
            }
            self.edges[i].color = Some(c);
            self.taken.insert(c);
        }
    }

    /// One message per edge still needing attention: undecided edges renew
    /// their (mask, min) snapshot every round; decided edges announce their
    /// color [`REANNOUNCE`] times, then go silent.
    fn sends(&mut self) -> Vec<(Vertex, RobustMsg)> {
        let min = self.min_undecided();
        let mut out = Vec::new();
        for e in &mut self.edges {
            match e.color {
                None => out.push((
                    e.nbr,
                    RobustMsg { mask: self.taken.clone(), min_undecided: min, color: None },
                )),
                Some(c) if e.announced < REANNOUNCE => {
                    e.announced += 1;
                    out.push((
                        e.nbr,
                        RobustMsg { mask: self.taken.clone(), min_undecided: min, color: Some(c) },
                    ));
                }
                Some(_) => {}
            }
        }
        out
    }
}

impl Protocol for RobustFinalize {
    type Msg = RobustMsg;
    type Output = Vec<(EdgeIdx, Option<Color>)>;

    fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, RobustMsg)> {
        self.sends()
    }

    fn round(&mut self, _ctx: &NodeCtx<'_>, inbox: &[(Vertex, RobustMsg)]) -> Action<RobustMsg> {
        for (sender, msg) in inbox {
            // A lost sender lookup is tolerated, not a panic: fault-era
            // robustness means no inbox content may crash the node.
            let Some(i) = self.edges.iter().position(|e| e.nbr == *sender) else {
                continue;
            };
            if msg.mask.domain() == self.taken.domain() {
                self.edges[i].peer_mask = Some(msg.mask.clone());
                self.edges[i].peer_min = msg.min_undecided;
            }
            match msg.color {
                // Follower adoption (idempotent: every announcement of an
                // edge carries the same color). Out-of-cap values are
                // ignored rather than inserted (Bitset would panic).
                Some(c) => {
                    if self.edges[i].color.is_none() && c < self.cap {
                        self.edges[i].color = Some(c);
                        self.taken.insert(c);
                    }
                }
                // The peer visibly does not know this edge's color yet
                // (its message predates the decision, or every
                // announcement so far was dropped): refresh the
                // announcement budget so the decision keeps being resent
                // until the peer goes quiet on the edge.
                None => {
                    if self.edges[i].color.is_some() {
                        self.edges[i].announced = 0;
                    }
                }
            }
        }
        self.decide();
        let sends = self.sends();
        if sends.is_empty() {
            return Action::Halt(Vec::new());
        }
        Action::Continue(sends)
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> Vec<(EdgeIdx, Option<Color>)> {
        self.edges.into_iter().map(|e| (e.eid, e.color)).collect()
    }
}

#[derive(Debug)]
struct FinalizeEdge {
    nbr: Vertex,
    eid: EdgeIdx,
    class: u64,
    color: Option<Color>,
}

/// The class-per-round finalize protocol (module docs, step 4).
///
/// Round `r` delivers the masks of class `r - 1` (sent the round before)
/// and decides those edges: both endpoints compute the smallest color
/// absent from the union of the two masks, so they agree without another
/// exchange. A proper schedule puts at most one edge per class at any
/// vertex, so each node sends at most one mask per round and every region
/// edge costs exactly two messages over the whole run.
#[derive(Debug)]
struct Finalize {
    cap: u64,
    /// Colors taken around this vertex: fixed boundary edges plus own
    /// region edges finalized in earlier classes.
    taken: Bitset,
    edges: Vec<FinalizeEdge>,
}

impl Finalize {
    fn sends_for_class(&self, class: u64) -> Vec<(Vertex, Bitset)> {
        self.edges
            .iter()
            .filter(|e| e.class == class && e.color.is_none())
            .map(|e| (e.nbr, self.taken.clone()))
            .collect()
    }
}

impl Protocol for Finalize {
    type Msg = Bitset;
    type Output = Vec<(EdgeIdx, u64)>;

    fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, Bitset)> {
        self.sends_for_class(0)
    }

    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, Bitset)]) -> Action<Bitset> {
        let deciding = ctx.round as u64 - 1;
        for (sender, mask) in inbox {
            let i = self
                .edges
                .iter()
                .position(|e| e.nbr == *sender)
                // INVARIANT: the transport delivers only along host edges, so the sender is always incident.
                .expect("mask from a non-incident sender");
            debug_assert_eq!(self.edges[i].class, deciding, "mask arrived off schedule");
            // The partner's mask is its `taken` at send time; ours hasn't
            // changed since we sent (one edge per class per vertex), so
            // both endpoints minimize over the same union.
            let mut union = mask.clone();
            union.union_with(&self.taken);
            let c = union.first_absent();
            assert!(c < self.cap, "no free color below 2Δ-1: impossible for a simple graph");
            self.edges[i].color = Some(c);
            self.taken.insert(c);
        }
        let sends = self.sends_for_class(ctx.round as u64);
        if sends.is_empty() && self.edges.iter().all(|e| e.color.is_some()) {
            return Action::Halt(Vec::new());
        }
        Action::Continue(sends)
    }

    fn finish(self, _ctx: &NodeCtx<'_>) -> Vec<(EdgeIdx, u64)> {
        self.edges
            .into_iter()
            // INVARIANT: the run loop halts only once every element is decided, so the Option is always Some.
            .map(|e| (e.eid, e.color.expect("every region edge finalized")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_core::edge::legal::edge_log_depth;
    use deco_graph::generators;

    fn engine(n: usize) -> Recolorer {
        Recolorer::new(n, edge_log_depth(1), MessageMode::Long).unwrap()
    }

    fn assert_valid(r: &Recolorer) {
        let c = r.coloring();
        assert!(c.is_proper(r.graph()), "coloring must stay proper");
        let bound = r.color_bound();
        assert!(c.colors().iter().all(|&x| x < bound), "colors must stay below {bound}");
    }

    #[test]
    fn empty_commit_on_empty_graph_is_clean() {
        let mut r = engine(5);
        let rep = r.commit().unwrap();
        assert_eq!(rep.strategy, RepairStrategy::Clean);
        assert_eq!(rep.dirty, 0);
        assert_valid(&r);
    }

    #[test]
    fn small_insertions_repair_incrementally() {
        let g = generators::random_bounded_degree(300, 6, 3);
        let mut r = Recolorer::from_graph(g, edge_log_depth(1), MessageMode::Long).unwrap();
        let first = r.commit().unwrap(); // initial coloring
        assert_eq!(first.strategy, RepairStrategy::FromScratch);
        assert_valid(&r);
        // A tiny batch: must repair locally.
        r.insert_edge(0, 150).unwrap();
        r.insert_edge(1, 200).unwrap();
        r.delete_edge_any(2);
        let rep = r.commit().unwrap();
        assert_eq!(rep.strategy, RepairStrategy::Incremental);
        assert!(rep.dirty <= 3, "only the touched edges are dirty, got {}", rep.dirty);
        assert!(rep.region_vertices <= 2 * rep.dirty);
        assert_valid(&r);
    }

    impl Recolorer {
        /// Test helper: queue deletion of `count` existing edges.
        fn delete_edge_any(&mut self, count: usize) {
            let edges: Vec<_> = self.graph().edges().take(count).collect();
            for (u, v) in edges {
                self.delete_edge(u, v).unwrap();
            }
        }
    }

    #[test]
    fn heavy_churn_falls_back_to_from_scratch() {
        let g = generators::random_bounded_degree(60, 4, 9);
        let mut r = Recolorer::from_graph(g, edge_log_depth(1), MessageMode::Long).unwrap();
        r.commit().unwrap();
        // Deletions alone never dirty a proper coloring (unless Δ shrinks
        // past the palette bound): the commit is clean.
        let m = r.graph().m();
        let removed: Vec<_> = r.graph().edges().take(m / 2).collect();
        for &(u, v) in &removed {
            r.delete_edge(u, v).unwrap();
        }
        let rep = r.commit().unwrap();
        assert_eq!(rep.strategy, RepairStrategy::Clean);
        assert_valid(&r);
        // Re-inserting them uncolors half the graph: over the threshold.
        for &(u, v) in &removed {
            r.insert_edge(u, v).unwrap();
        }
        let rep = r.commit().unwrap();
        assert_eq!(rep.strategy, RepairStrategy::FromScratch);
        assert_eq!(rep.dirty, removed.len());
        assert_valid(&r);
    }

    #[test]
    fn deletions_only_commit_is_clean_or_repairs_bound() {
        let g = generators::random_bounded_degree(200, 5, 11);
        let mut r = Recolorer::from_graph(g, edge_log_depth(1), MessageMode::Long).unwrap();
        r.commit().unwrap();
        r.delete_edge_any(3);
        let rep = r.commit().unwrap();
        // Deletions never create conflicts; only a shrinking Δ (palette
        // bound) can dirty surviving edges.
        assert!(matches!(
            rep.strategy,
            RepairStrategy::Clean | RepairStrategy::Incremental | RepairStrategy::FromScratch
        ));
        assert_valid(&r);
    }

    #[test]
    fn failed_batch_leaves_engine_intact() {
        let mut r = engine(4);
        r.insert_edge(0, 1).unwrap();
        r.commit().unwrap();
        let before = r.coloring();
        r.insert_edge(0, 1).unwrap(); // duplicate
        assert!(r.commit().is_err());
        assert_eq!(r.coloring(), before);
        assert_valid(&r);
        // The engine still works after the failure.
        r.insert_edge(1, 2).unwrap();
        r.commit().unwrap();
        assert_valid(&r);
    }

    #[test]
    fn grown_vertices_participate() {
        let mut r = engine(2);
        r.insert_edge(0, 1).unwrap();
        r.commit().unwrap();
        let v = r.add_vertex();
        r.insert_edge(1, v).unwrap();
        r.insert_edge(0, v).unwrap();
        let rep = r.commit().unwrap();
        assert_eq!(rep.n, 3);
        assert_valid(&r);
    }

    #[test]
    fn delta_and_rebuild_paths_are_bit_identical() {
        // The differential contract of the delta-CSR: every report and
        // every color agrees with the PR 3 rebuild path, commit by commit.
        let g = generators::random_bounded_degree(250, 6, 5);
        let params = edge_log_depth(1);
        let mut fast = Recolorer::from_graph(g.clone(), params, MessageMode::Long).unwrap();
        let mut slow = Recolorer::from_graph_with(
            g,
            params,
            MessageMode::Long,
            RecolorConfig::default().with_rebuild_commits(true),
        )
        .unwrap();
        let drive = |r: &mut Recolorer, step: usize| -> CommitReport {
            let edges: Vec<_> = r.graph().edges().skip(step * 11).take(3).collect();
            for &(u, v) in &edges {
                r.delete_edge(u, v).unwrap();
            }
            r.insert_edge(step, 100 + step).unwrap();
            r.commit().unwrap()
        };
        assert_eq!(fast.commit().unwrap(), slow.commit().unwrap()); // initial build
        for step in 0..5 {
            let a = drive(&mut fast, step);
            let b = drive(&mut slow, step);
            assert_eq!(a, b, "step {step}: reports diverge");
            assert_eq!(fast.coloring(), slow.coloring(), "step {step}: colors diverge");
            assert_eq!(fast.graph(), slow.graph(), "step {step}: snapshots diverge");
        }
        // Errors agree too.
        fast.insert_edge(0, 100).unwrap();
        fast.insert_edge(0, 100).unwrap();
        slow.insert_edge(0, 100).unwrap();
        slow.insert_edge(0, 100).unwrap();
        assert_eq!(fast.commit().unwrap_err(), slow.commit().unwrap_err());
        assert_eq!(fast.coloring(), slow.coloring());
    }

    #[test]
    fn shrink_carries_colors_through_renumbering() {
        let mut r = engine(8); // vertices 5..8 stay isolated
        r.insert_edge(0, 1).unwrap();
        r.insert_edge(1, 2).unwrap();
        r.insert_edge(2, 3).unwrap();
        r.insert_edge(3, 4).unwrap();
        r.commit().unwrap();
        let before = r.coloring();
        r.shrink_isolated();
        let rep = r.commit().unwrap();
        // No edge was touched: the commit is clean and colors survive the
        // renumbering slot for slot.
        assert_eq!(rep.strategy, RepairStrategy::Clean);
        assert_eq!(rep.n, 5);
        assert_eq!(r.coloring(), before);
        assert_valid(&r);
        // Mutations mixed into a shrink batch still repair locally.
        r.shrink_isolated();
        r.insert_edge(0, 4).unwrap();
        let rep = r.commit().unwrap();
        assert!(rep.dirty >= 1);
        assert_valid(&r);
    }

    use deco_local::FaultyTransport;

    /// Churn driver shared by the fault tests: flap a sliding window of
    /// edges and insert one fresh edge per step.
    fn churn_step(r: &mut Recolorer, step: usize) -> CommitReport {
        let edges: Vec<_> = r.graph().edges().skip(step * 9).take(3).collect();
        for &(u, v) in &edges {
            r.delete_edge(u, v).unwrap();
        }
        r.commit().unwrap();
        for &(u, v) in &edges {
            r.insert_edge(u, v).unwrap();
        }
        r.commit().unwrap()
    }

    #[test]
    fn zero_rate_faulty_transport_still_repairs_incrementally() {
        // A faulty transport that drops nothing selects the resilient path
        // (it is not perfect), which must converge on the first attempt:
        // no retries, no fallbacks, a verified-legal coloring.
        let g = generators::random_bounded_degree(300, 6, 13);
        let mut r = Recolorer::from_graph_with(
            g,
            edge_log_depth(1),
            MessageMode::Long,
            RecolorConfig::default().with_transport(Arc::new(FaultyTransport::new(7))),
        )
        .unwrap();
        let first = r.commit().unwrap(); // initial build: fault-free pipeline
        assert_eq!(first.strategy, RepairStrategy::FromScratch);
        assert_eq!((first.retries, first.fallbacks), (0, 0));
        for step in 0..3 {
            let rep = churn_step(&mut r, step);
            assert_eq!(rep.strategy, RepairStrategy::Incremental, "step {step}");
            assert_eq!((rep.retries, rep.fallbacks), (0, 0), "step {step}");
            assert_eq!(rep.recolored, rep.dirty, "step {step}");
            assert_valid(&r);
        }
    }

    #[test]
    fn lossy_transport_self_stabilizes_deterministically() {
        // Real fault rates: every commit must still end verified-legal
        // within the bounded retry/fallback budget, and the whole history
        // (colors + reports, including the fault counters) must be a pure
        // function of the transport seed.
        let lossy = || {
            Arc::new(
                FaultyTransport::new(5)
                    .with_drop(120_000)
                    .with_delay(100_000, 2)
                    .with_reorder(80_000),
            )
        };
        let run = |transport: Arc<FaultyTransport>| {
            let g = generators::random_bounded_degree(300, 6, 17);
            let mut r = Recolorer::from_graph_with(
                g,
                edge_log_depth(1),
                MessageMode::Long,
                RecolorConfig::default().with_transport(transport),
            )
            .unwrap();
            r.commit().unwrap();
            let mut reports = Vec::new();
            for step in 0..4 {
                reports.push(churn_step(&mut r, step));
                assert_valid(&r);
            }
            (r.coloring(), reports)
        };
        let (colors_a, reports_a) = run(lossy());
        let (colors_b, reports_b) = run(lossy());
        assert_eq!(colors_a, colors_b, "faulty repairs must be seed-deterministic");
        assert_eq!(reports_a, reports_b, "fault counters must be seed-deterministic");
        for rep in &reports_a {
            assert!(rep.fallbacks <= 1);
            assert!(rep.retries <= 5, "retry budget exceeded: {}", rep.retries);
        }
    }

    #[test]
    fn total_message_loss_degrades_to_from_scratch() {
        // A transport that drops everything can never finish a distributed
        // repair: every attempt must hit its round cap and the commit must
        // degrade to the fault-free pipeline — legal coloring, no panic.
        let g = generators::random_bounded_degree(120, 5, 19);
        let mut r = Recolorer::from_graph_with(
            g,
            edge_log_depth(1),
            MessageMode::Long,
            RecolorConfig::default()
                .with_transport(Arc::new(FaultyTransport::new(3).with_drop(1_000_000)))
                .with_max_repair_attempts(2),
        )
        .unwrap();
        r.commit().unwrap();
        let rep = churn_step(&mut r, 0);
        assert_eq!(rep.strategy, RepairStrategy::FromScratch);
        assert_eq!(rep.retries, 2, "every attempt must fail under total loss");
        assert_eq!(rep.fallbacks, 1);
        assert!(rep.stats.transport_dropped > 0, "drops must reach the commit stats");
        assert_valid(&r);
    }

    #[test]
    fn repeated_small_batches_stay_valid_and_local() {
        let g = generators::random_bounded_degree(400, 6, 21);
        let mut r = Recolorer::from_graph(g, edge_log_depth(1), MessageMode::Long).unwrap();
        r.commit().unwrap();
        for step in 0..6 {
            // Flap a sliding window of edges: delete 4, reinsert 4 others.
            let edges: Vec<_> = r.graph().edges().skip(step * 7).take(4).collect();
            for &(u, v) in &edges {
                r.delete_edge(u, v).unwrap();
            }
            let rep = r.commit().unwrap();
            assert_ne!(rep.strategy, RepairStrategy::FromScratch);
            assert_valid(&r);
            for &(u, v) in &edges {
                r.insert_edge(u, v).unwrap();
            }
            let rep = r.commit().unwrap();
            assert_eq!(rep.strategy, RepairStrategy::Incremental);
            assert_eq!(rep.dirty, 4);
            assert_valid(&r);
        }
    }
}
