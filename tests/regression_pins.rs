//! Regression pins: exact measured values for fixed seeds.
//!
//! The reproduction's claims in EXPERIMENTS.md rest on the simulator being
//! bit-for-bit deterministic. These tests pin concrete (colors, rounds,
//! messages) triples so any behavioral drift — a changed tie-break, a
//! reordered loop, an accounting fix — shows up as an explicit diff that
//! must be acknowledged by updating the pin and re-running the benches.
//!
//! The seeded graphs come from the workspace-local `rand` stand-in (see
//! `crates/rand`), so these values are pinned against *its* streams; a
//! change to that crate's PRNG invalidates every pin below.

use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_graph::generators;
use deco_graph::line_graph::line_graph;
use deco_local::Network;

#[test]
fn pin_edge_color_on_seeded_graph() {
    let g = generators::random_bounded_degree(512, 64, 0xF1);
    assert_eq!((g.n(), g.m(), g.max_degree()), (512, 16380, 64));
    let run = edge_color(&g, edge_log_depth(1), MessageMode::Long).unwrap();
    assert!(run.coloring.is_proper(&g));
    assert_eq!(run.coloring.palette_size(), 185);
    assert_eq!(run.theta, 23_808);
    // Deliberate re-pin (PR 5): early node halting in the PR assignment
    // phase ends each node at its own last (forest, CV) step, so the round
    // total dropped from 466; colors and message counts are unchanged (the
    // halting-on/off differential test pins that).
    assert_eq!(run.stats.rounds, 206);
    assert_eq!(run.stats.messages, 3_199_962);
    assert_eq!(run.levels.len(), 2);
}

#[test]
fn pin_panconesi_rizzi_on_seeded_graph() {
    let g = generators::random_bounded_degree(512, 64, 0xF1);
    let (pr, stats) = pr_edge_color(&g);
    assert!(pr.is_proper(&g));
    assert_eq!(pr.palette_size(), 93);
    // Deliberate re-pin (PR 5, early halting): 399 → 397. On this dense
    // graph the global maximum (forest, CV) step nearly fills the 6Δ
    // schedule, so only the tail rounds vanish — the win is in live-node
    // rounds, not the round total.
    assert_eq!(stats.rounds, 397);
    assert_eq!(stats.messages, 262_080);
}

#[test]
fn pin_vertex_legal_color_on_seeded_line_graph() {
    let l = line_graph(&generators::random_bounded_degree(100, 10, 0xF2));
    assert_eq!((l.n(), l.m(), l.max_degree()), (500, 4500, 18));
    let net = Network::new(&l);
    let run = legal_color(&net, 2, LegalParams::log_depth(2, 1)).unwrap();
    assert!(run.coloring.is_proper(&l));
    assert_eq!(run.coloring.palette_size(), 15);
    assert_eq!(run.theta, 19);
    assert_eq!(run.stats.rounds, 196);
    assert_eq!(run.stats.messages, 54_000);
}

#[test]
fn pin_crossover_direction() {
    // The Table 1 crossover claim, pinned: at this Δ ours is strictly
    // faster than PR in rounds.
    let params = edge_log_depth(1);
    let g = generators::random_bounded_degree(512, 2 * params.lambda as usize, 0xF3);
    let ours = edge_color(&g, params, MessageMode::Long).unwrap();
    let (_, pr) = pr_edge_color(&g);
    assert!(
        ours.stats.rounds < pr.rounds,
        "crossover regressed: ours {} vs PR {}",
        ours.stats.rounds,
        pr.rounds
    );
}

#[test]
fn pin_churn_trace_color_history() {
    // The streaming engine's determinism pin: a fixed churn trace must
    // reproduce this exact per-commit trajectory — strategies, repair
    // sizes, rounds, messages and the palette after every commit. Any
    // drift in the recolorer (dirty marking, schedule compaction, mask
    // tie-breaks) or in the underlying pipeline shows up here first.
    use deco_graph::trace::churn_trace;
    use deco_stream::{replay_trace, RepairStrategy};

    let trace = churn_trace(256, 6, 4, 10, 0xF4);
    let out = replay_trace(&trace, edge_log_depth(1), MessageMode::Long, 25).unwrap();
    let g = out.recolorer.graph();
    let coloring = out.recolorer.coloring();
    assert!(coloring.is_proper(g));
    assert_eq!((g.n(), g.m(), g.max_degree()), (256, 767, 6));
    let got: Vec<(RepairStrategy, usize, usize, usize)> = out
        .reports
        .iter()
        .map(|r| (r.strategy, r.dirty, r.stats.rounds, r.stats.messages))
        .collect();
    let i = RepairStrategy::Incremental;
    // Rounds re-pinned for PR 5's early halting (48/20/26/19/20 were
    // 50/28/28/21/28); repair sizes, messages, colors and the checksum
    // below are unchanged.
    let expected = vec![
        (RepairStrategy::FromScratch, 767, 48, 11_505),
        (i, 10, 20, 170),
        (i, 10, 26, 170),
        (i, 10, 19, 170),
        (i, 10, 20, 170),
    ];
    assert_eq!(got, expected);
    assert_eq!(coloring.palette_size(), 9);
    // The full color vector of the final snapshot, squashed to a checksum.
    let checksum = coloring
        .colors()
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, &c| (h ^ c).wrapping_mul(0x1000_0000_01b3));
    assert_eq!(checksum, 4_543_418_779_868_263_760);
}
