//! `deco-tidy` — workspace static analysis that machine-enforces the
//! contracts the rest of the workspace only *states* in rustdoc: the
//! determinism model (bit-identical colorings across engines × threads ×
//! delivery × shards), the probe zero-cost contract, the unsafe audit,
//! and a handful of hygiene rules. Zero external dependencies; the
//! scanner is a hand-rolled line/token pass in the style of
//! rust-lang/rust's `tidy`, so the offline build stays intact.
//!
//! # Lints
//!
//! | name | rule |
//! |------|------|
//! | `hash-iter` | no `HashMap`/`HashSet` in the deterministic crates' `src/` (graph/core/local/stream); no hash-order iteration anywhere else |
//! | `wall-clock` | no `Instant`/`SystemTime` outside `crates/bench` (the quarantined wall/`environment` reporting crate) |
//! | `seeded-rand` | no nondeterministic entropy (`thread_rng`, `from_entropy`, `OsRng`, `getrandom`); manifests may only depend on the path shim `crates/rand` |
//! | `probe-gated` | every `.emit(…)` call site in `src/` must be gated on `enabled()` within its function (the zero-cost contract `pr8_probe` asserts dynamically, checked statically at every site) |
//! | `unsafe-audit` | `unsafe` only in allowlisted modules, and every site needs an adjacent `// SAFETY:` comment |
//! | `deprecated-expiry` | every `#[deprecated]` note must name `remove-by: PR<N>`, and the item must be gone once PR `N` is current (current PR = `CHANGES.md` lines + 1) |
//! | `invariant-panic` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test `src/` code without an adjacent `// INVARIANT:` comment |
//! | `readme-crates` | every directory under `crates/` appears in the README workspace-layout table |
//!
//! # Inline allowlisting
//!
//! A violation is suppressed by `// tidy: allow(<lint>) — <justification>`:
//! trailing on the flagged line it covers that line; on its own line it
//! covers the *next statement* (through the first following line whose
//! code ends in `;`, `{`, or `}`). The justification is mandatory — a
//! bare allow is itself a violation — and the lint name must be real, so
//! typos can't silently disable anything. Allows are deliberately
//! `--fix`-free: `deco-tidy` reports and exits non-zero, humans edit.
//!
//! # Running
//!
//! ```text
//! cargo run -p deco-tidy -- check            # human-readable report
//! cargo run -p deco-tidy -- check --json     # machine-readable report
//! cargo run -p deco-tidy -- check --root X   # lint another tree (CI self-test)
//! ```
//!
//! The whole-tree pass also runs as a regular `cargo test`
//! (`tests/tidy_self.rs`), so tier-1 catches violations without CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scan;

mod lints;
mod walk;

pub use lints::{lint_manifest, lint_readme, lint_rust_source, LINT_NAMES};
pub use walk::check_workspace;

use std::fmt;

/// One reported violation (or allowlist-syntax problem).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The lint that fired (one of [`LINT_NAMES`], or `allow-syntax`).
    pub lint: &'static str,
    /// Workspace-relative path, unix separators.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// What went wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.lint, self.message)
    }
}

/// The result of a whole-workspace check.
#[derive(Debug)]
pub struct Report {
    /// Every violation found, in file order.
    pub violations: Vec<Diagnostic>,
    /// Number of files scanned (Rust sources + manifests + README).
    pub files_scanned: usize,
}

impl Report {
    /// Did the tree pass?
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The machine-readable report (`deco-tidy check --json`): one stable
    /// JSON object with the lint registry, scan size, and each violation.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"lints\": [");
        for (i, name) in LINT_NAMES.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push('"');
            s.push_str(name);
            s.push('"');
        }
        s.push_str("],\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!("  \"violation_count\": {},\n", self.violations.len()));
        s.push_str("  \"violations\": [");
        for (i, d) in self.violations.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"lint\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
                json_escape(d.lint),
                json_escape(&d.path),
                d.line,
                json_escape(&d.message)
            ));
        }
        if !self.violations.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
