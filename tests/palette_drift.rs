//! Steady-state **palette drift** and its mitigation (PR 5).
//!
//! Incremental repairs are greedy: the finalize phase only promises colors
//! below the cap `2Δ - 1`, while the from-scratch pipeline's actual palette
//! is usually far tighter. Under adversarial churn — edges flapping around
//! saturated vertices, so freed low colors are stolen before the flapped
//! edge returns — the colors in use ratchet toward the cap and *stay*
//! there: a repair can introduce a high color but nothing ever re-lowers an
//! untouched edge. [`Recolorer::with_compaction_every`] is the mitigation:
//! every k-th commit re-runs the whole pipeline, squeezing the palette back
//! toward the snapshot's ϑ.
//!
//! Everything here is deterministic (seeded generators, deterministic
//! engine), so the assertions are measured facts with margins, not flaky
//! heuristics.

use deco_core::edge::legal::{edge_log_depth, MessageMode};
use deco_graph::Graph;
use deco_stream::{RecolorConfig, Recolorer, RepairStrategy};

/// Largest color currently in use.
fn max_color(r: &Recolorer) -> u64 {
    r.coloring().colors().iter().max().copied().expect("graph has edges")
}

/// Drives `engine` through a rolling-window flap of K9's edge groups:
/// commit `t` deletes group `t mod 9` and reinserts group `t-1 mod 9`, so
/// every freed color is up for grabs by a *different* edge before its own
/// edge returns — the ratchet that makes greedy repairs drift. Returns the
/// per-commit max-color history.
fn drive(mut engine: Recolorer, commits: usize) -> (Recolorer, Vec<u64>) {
    let groups: Vec<Vec<(usize, usize)>> = {
        let g = deco_graph::generators::complete(9);
        g.edges().collect::<Vec<_>>().chunks(4).map(<[_]>::to_vec).collect()
    };
    engine.commit().expect("initial build");
    for &(u, v) in &groups[0] {
        engine.delete_edge(u, v).unwrap();
    }
    engine.commit().expect("prologue");
    let mut history = Vec::with_capacity(commits);
    for t in 1..=commits {
        for &(u, v) in &groups[t % groups.len()] {
            engine.delete_edge(u, v).unwrap();
        }
        for &(u, v) in &groups[(t - 1) % groups.len()] {
            engine.insert_edge(u, v).unwrap();
        }
        engine.commit().expect("flap commit");
        history.push(max_color(&engine));
    }
    (engine, history)
}

#[test]
fn long_churn_drifts_to_the_greedy_cap_without_compaction_and_resets_with_it() {
    let params = edge_log_depth(1);
    let k9 = || deco_graph::generators::complete(9);
    let commits = 80;

    let (plain, drifted) =
        drive(Recolorer::from_graph(k9(), params, MessageMode::Long).unwrap(), commits);
    let (compacted, reset) = drive(
        Recolorer::from_graph_with(
            k9(),
            params,
            MessageMode::Long,
            RecolorConfig::default().with_compaction_every(10),
        )
        .unwrap(),
        commits,
    );

    let bound = plain.color_bound();
    assert_eq!(bound, 15, "K9 (Δ = 8): greedy cap 2Δ-1");
    let tail = |h: &[u64]| h[commits / 2..].to_vec();
    let (drift_tail, reset_tail) = (tail(&drifted), tail(&reset));

    // Without compaction the steady state sits essentially at the cap:
    // max color 2Δ-2 on at least three quarters of the tail commits.
    assert_eq!(*drift_tail.iter().max().unwrap(), bound - 1, "drift must reach 2Δ-2");
    let at_cap = drift_tail.iter().filter(|&&c| c == bound - 1).count();
    assert!(
        at_cap * 4 >= drift_tail.len() * 3,
        "greedy steady state must hold near the cap: {at_cap}/{} commits",
        drift_tail.len()
    );

    // With periodic compaction the palette re-tightens and stays there.
    assert!(
        *reset_tail.iter().max().unwrap() < bound - 1,
        "compaction must keep the palette below the drifted cap: {reset_tail:?}"
    );
    let avg = |h: &[u64]| h.iter().sum::<u64>() as f64 / h.len() as f64;
    assert!(
        avg(&drift_tail) - avg(&reset_tail) >= 2.0,
        "compaction must buy at least two colors on average: {:.1} vs {:.1}",
        avg(&drift_tail),
        avg(&reset_tail)
    );

    // Both engines stay correct throughout; the trade is colors only.
    for engine in [&plain, &compacted] {
        let g: &Graph = engine.graph();
        assert!(engine.coloring().is_proper(g));
        assert!(max_color(engine) < engine.color_bound());
    }
}

#[test]
fn compaction_commits_force_from_scratch_even_when_clean() {
    // An untouched batch on a compaction boundary still recolors: that is
    // the point — the *clean* path would keep the drifted palette alive.
    let g = deco_graph::generators::random_bounded_degree(120, 6, 0xC0DE);
    let mut r = Recolorer::from_graph_with(
        g,
        edge_log_depth(1),
        MessageMode::Long,
        RecolorConfig::default().with_compaction_every(2),
    )
    .unwrap();
    let first = r.commit().unwrap();
    assert_eq!(first.strategy, RepairStrategy::FromScratch); // initial build
    let second = r.commit().unwrap(); // empty batch, but commit #1 → k=2 due
    assert_eq!(second.strategy, RepairStrategy::FromScratch, "compaction must fire");
    assert_eq!(second.recolored, second.m);
    let third = r.commit().unwrap(); // empty batch, off-cycle
    assert_eq!(third.strategy, RepairStrategy::Clean);
    assert!(r.coloring().is_proper(r.graph()));
}
