//! The multi-tenant service: sharded work-stealing workers, deterministic
//! per-tenant serialization, cost-based admission.
//!
//! # Scheduling model
//!
//! The unit of scheduling is a **tenant claim**, not a message. When a
//! submission makes an idle tenant's inbox non-empty, the tenant is marked
//! `scheduled` and its id is pushed onto its home shard's queue
//! (`id % shards`). A worker that claims the id drains the inbox to empty
//! under the tenant's executor lock, then clears the flag (re-enqueueing
//! if more arrived in the meantime). Work stealing moves *claims* between
//! shards — a tenant's messages still apply strictly in submission order,
//! because at most one worker ever holds its claim. That single-drainer
//! invariant, combined with the [`RegionRecolor`] determinism contract, is
//! the service's determinism theorem: per-tenant commit reports, colorings
//! and snapshots are bit-identical at *any* shard count, 1 through N.
//!
//! # Flow control
//!
//! Three pressure valves, all deterministic per tenant:
//!
//! * **bounded inboxes** — [`Serve::submit`] rejects with
//!   [`ServeError::Backpressure`] when the tenant's queue is at
//!   `queue_depth`; [`Serve::submit_blocking`] parks the caller until a
//!   worker pops.
//! * **admission quota** — every commit's `stats.node_rounds` (the
//!   simulator's stepped-node-rounds cost, the workspace's standing cost
//!   currency) accrues to the tenant; past `cost_quota` new submissions
//!   are rejected with [`ServeError::QuotaExhausted`]. Reads are a single
//!   lock-free atomic load.
//! * **compaction budgeting** — the same per-commit cost feeds a
//!   per-tenant accumulator; when it crosses `compact_cost_budget` the
//!   service requests a palette compaction on the engine and resets the
//!   accumulator, so hot tenants compact proportionally to the repair
//!   work they generate (and idle tenants never do).

use crate::snapshot::Swap;
use crate::tenant::{
    reports_fingerprint, EngineKind, Exec, Fnv, Inbox, Tenant, TenantError, TenantMsg,
    TenantSnapshot, TenantSpec,
};
use deco_core::params::ParamError;
use deco_graph::trace::TraceOp;
use deco_stream::{CommitReport, Recolorer, RegionRecolor, SegRecolorer};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// Opaque tenant handle returned by [`Serve::register`] (registration
/// order, dense from 0).
pub type TenantId = usize;

/// Service-level failures. Engine-level failures never surface here —
/// they are recorded per tenant ([`Serve::errors`]) and the service keeps
/// running.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServeError {
    /// No tenant with that id.
    UnknownTenant(TenantId),
    /// The tenant's parameters cannot contract.
    InvalidParams(ParamError),
    /// The tenant's inbox is full (non-blocking submission only).
    Backpressure(TenantId),
    /// The tenant spent its admission quota of committed `node_rounds`.
    QuotaExhausted(TenantId),
    /// A queue-side failure poisoned the tenant; see [`Serve::errors`].
    Quarantined(TenantId),
    /// The service is shutting down.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            ServeError::InvalidParams(e) => write!(f, "invalid parameters: {e}"),
            ServeError::Backpressure(t) => write!(f, "tenant {t}: inbox full"),
            ServeError::QuotaExhausted(t) => write!(f, "tenant {t}: cost quota exhausted"),
            ServeError::Quarantined(t) => write!(f, "tenant {t}: quarantined"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl Error for ServeError {}

impl From<ParamError> for ServeError {
    fn from(e: ParamError) -> Self {
        ServeError::InvalidParams(e)
    }
}

/// Service-wide knobs. Per-tenant knobs live in the tenant's
/// [`RecolorConfig`](deco_stream::RecolorConfig) instead.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub(crate) shards: usize,
    pub(crate) queue_depth: usize,
    pub(crate) cost_quota: u64,
    pub(crate) compact_cost_budget: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { shards: 4, queue_depth: 1024, cost_quota: 0, compact_cost_budget: 0 }
    }
}

impl ServeConfig {
    /// Worker threads / shard queues (default 4, clamped to at least 1).
    /// Per-tenant results never depend on this — the serve determinism
    /// tests pin byte-identical transcripts across shard counts.
    pub fn with_shards(mut self, shards: usize) -> ServeConfig {
        self.shards = shards.max(1);
        self
    }

    /// Per-tenant inbox capacity (default 1024, clamped to at least 1);
    /// the backpressure bound.
    pub fn with_queue_depth(mut self, depth: usize) -> ServeConfig {
        self.queue_depth = depth.max(1);
        self
    }

    /// Per-tenant admission budget in committed `node_rounds` (default 0
    /// = unlimited). A tenant at or past its quota has new submissions
    /// rejected; already-queued messages still run.
    pub fn with_cost_quota(mut self, quota: u64) -> ServeConfig {
        self.cost_quota = quota;
        self
    }

    /// Per-tenant compaction budget in committed `node_rounds` (default 0
    /// = never): when a tenant's accumulated cost since its last
    /// compaction crosses the budget, the next commit runs from scratch
    /// (palette reset). Deterministic — the trigger depends only on the
    /// tenant's own commit history.
    pub fn with_compact_cost_budget(mut self, budget: u64) -> ServeConfig {
        self.compact_cost_budget = budget;
        self
    }

    /// Worker threads / shard queues.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Per-tenant inbox capacity.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// Per-tenant admission budget (0 = unlimited).
    pub fn cost_quota(&self) -> u64 {
        self.cost_quota
    }

    /// Per-tenant compaction budget (0 = never).
    pub fn compact_cost_budget(&self) -> u64 {
        self.compact_cost_budget
    }
}

/// Everything the workers and the front end share.
struct Shared {
    cfg: ServeConfig,
    /// Registration-ordered tenants; appended under the write lock,
    /// everything else takes cheap read locks.
    tenants: RwLock<Vec<Arc<Tenant>>>,
    /// One claim queue per shard; workers pop their own front and steal
    /// from other shards' backs.
    queues: Vec<Mutex<VecDeque<TenantId>>>,
    /// Wakeup channel: the version bumps on every enqueue so a worker
    /// that saw an empty scan sleeps only if nothing arrived since.
    work: Mutex<u64>,
    work_cv: Condvar,
    /// Messages accepted but not yet fully processed; [`Serve::drain`]
    /// waits for 0.
    inflight: Mutex<u64>,
    quiet: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn tenant(&self, id: TenantId) -> Result<Arc<Tenant>, ServeError> {
        self.tenants
            .read()
            // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
            .expect("tenant table poisoned")
            .get(id)
            .cloned()
            .ok_or(ServeError::UnknownTenant(id))
    }

    /// Pushes a claim and wakes a worker.
    fn enqueue_claim(&self, shard: usize, id: TenantId) {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        self.queues[shard].lock().expect("shard queue poisoned").push_back(id);
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let mut version = self.work.lock().expect("work version poisoned");
        *version += 1;
        drop(version);
        self.work_cv.notify_one();
    }

    /// Claims work for `home`: own queue front first (cache-warm FIFO),
    /// then steal from the other shards' backs.
    fn next_claim(&self, home: usize) -> Option<TenantId> {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        if let Some(id) = self.queues[home].lock().expect("shard queue poisoned").pop_front() {
            return Some(id);
        }
        let shards = self.queues.len();
        for step in 1..shards {
            let victim = (home + step) % shards;
            // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
            if let Some(id) = self.queues[victim].lock().expect("shard queue poisoned").pop_back() {
                return Some(id);
            }
        }
        None
    }

    fn finish_messages(&self, count: u64) {
        if count == 0 {
            return;
        }
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let mut inflight = self.inflight.lock().expect("inflight poisoned");
        *inflight -= count;
        if *inflight == 0 {
            self.quiet.notify_all();
        }
    }

    /// Drains one claimed tenant to empty. Returns with the tenant either
    /// unscheduled (inbox empty) — the next submission re-enqueues it —
    /// or never unscheduled here because pops and the flag share the
    /// inbox lock.
    fn drain_tenant(&self, id: TenantId) {
        let Ok(tenant) = self.tenant(id) else { return };
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let mut exec = tenant.exec.lock().expect("tenant executor poisoned");
        let mut processed = 0u64;
        loop {
            let msg = {
                // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
                let mut inbox = tenant.inbox.lock().expect("tenant inbox poisoned");
                match inbox.queue.pop_front() {
                    Some(msg) => {
                        tenant.space.notify_one();
                        msg
                    }
                    None => {
                        inbox.scheduled = false;
                        break;
                    }
                }
            };
            self.process(&tenant, &mut exec, msg);
            processed += 1;
            // Publish progress eagerly so `drain` callers waiting on the
            // quiet condvar see long drains advance.
            if processed >= 64 {
                self.finish_messages(processed);
                processed = 0;
            }
        }
        drop(exec);
        self.finish_messages(processed);
    }

    /// Applies one message to the claimed tenant's engine.
    fn process(&self, tenant: &Tenant, exec: &mut Exec, msg: TenantMsg) {
        match msg {
            TenantMsg::Op(op) => {
                if exec.quarantined {
                    return; // poisoned batch state: discard until the end
                }
                if let Err(e) = exec.engine.queue_op(op) {
                    // The engine's queued prefix is now unknowable to the
                    // submitter, so the whole tenant stops: deterministic,
                    // and the error is preserved for the operator.
                    let commits = exec.engine.commits();
                    exec.errors
                        .push(TenantError { commits, message: format!("queue {op:?}: {e}") });
                    exec.quarantined = true;
                }
            }
            TenantMsg::Commit => {
                if exec.quarantined {
                    return;
                }
                // tidy: allow(wall-clock) — engine-side commit latency is
                // informational (p50/p99 report lines); transcripts and
                // fingerprints never read the clock.
                let t0 = std::time::Instant::now();
                match exec.engine.commit() {
                    Ok(report) => {
                        exec.commit_walls.push(t0.elapsed());
                        self.finish_commit(tenant, exec, report);
                    }
                    Err(e) => {
                        // The engine discarded the batch and kept the
                        // previous snapshot; the tenant stays live.
                        let commits = exec.engine.commits();
                        exec.errors.push(TenantError { commits, message: format!("commit: {e}") });
                    }
                }
            }
            TenantMsg::Compact => exec.engine.request_compaction(),
        }
    }

    /// Accounting and publication after a successful commit.
    fn finish_commit(&self, tenant: &Tenant, exec: &mut Exec, report: CommitReport) {
        let cost = report.stats.node_rounds as u64;
        tenant.cost.fetch_add(cost, Ordering::Relaxed);
        if self.cfg.compact_cost_budget > 0 {
            exec.cost_since_compaction += cost;
            if exec.cost_since_compaction >= self.cfg.compact_cost_budget {
                exec.engine.request_compaction();
                exec.cost_since_compaction = 0;
            }
        }
        exec.reports.push(report);
        let commits = exec.engine.commits();
        let graph = exec.engine.snapshot();
        tenant.snap.store(Arc::new(TenantSnapshot {
            epoch: commits as u64,
            commits,
            n: graph.n(),
            m: graph.m(),
            max_degree: graph.max_degree(),
            color_bound: exec.engine.color_bound(),
            coloring: exec.engine.coloring(),
            graph,
        }));
    }

    fn worker(&self, home: usize) {
        loop {
            if let Some(id) = self.next_claim(home) {
                self.drain_tenant(id);
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst) {
                // Queues were empty this scan; claims enqueued after the
                // flag are drained by whichever worker sees them before
                // its own empty scan, and `shutdown` runs post-drain.
                return;
            }
            // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
            let version = self.work.lock().expect("work version poisoned");
            let seen = *version;
            // Re-check under the lock: an enqueue bumps the version under
            // this same mutex, so either we see the bump or the wait
            // starts before the notify and catches it. The timeout is a
            // belt-and-braces liveness floor, not a correctness crutch.
            let _ = self
                .work_cv
                .wait_timeout_while(version, Duration::from_millis(50), |v| {
                    *v == seen && !self.shutdown.load(Ordering::SeqCst)
                })
                // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
                .expect("work version poisoned");
        }
    }
}

/// The multi-tenant recoloring service: thousands of independent
/// [`RegionRecolor`] engines behind one sharded worker pool. See the
/// module docs for the scheduling and flow-control model, and the crate
/// docs for an end-to-end example.
pub struct Serve {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Serve {
    /// Starts the worker pool (one thread per shard).
    pub fn start(cfg: ServeConfig) -> Serve {
        let shared = Arc::new(Shared {
            queues: (0..cfg.shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            cfg,
            tenants: RwLock::new(Vec::new()),
            work: Mutex::new(0),
            work_cv: Condvar::new(),
            inflight: Mutex::new(0),
            quiet: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..shared.cfg.shards)
            .map(|home| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("deco-serve-{home}"))
                    .spawn(move || shared.worker(home))
                    // INVARIANT: failing to spawn a worker leaves the fleet unusable; panicking at startup is the intended behavior.
                    .expect("spawn worker")
            })
            .collect();
        Serve { shared, workers }
    }

    /// Registers a tenant and returns its handle. The engine is built
    /// from the spec immediately; epoch-0 snapshot (edgeless) is
    /// published before this returns.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidParams`] if the spec's parameters
    /// cannot contract, [`ServeError::ShuttingDown`] after shutdown
    /// began.
    pub fn register(&self, spec: TenantSpec) -> Result<TenantId, ServeError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let engine: Box<dyn RegionRecolor + Send> = match spec.engine {
            EngineKind::Legacy => {
                Box::new(Recolorer::new_with(spec.n0, spec.params, spec.mode, spec.config)?)
            }
            EngineKind::Segmented => {
                Box::new(SegRecolorer::new_with(spec.n0, spec.params, spec.mode, spec.config)?)
            }
        };
        let graph = engine.snapshot();
        let snapshot = TenantSnapshot {
            epoch: 0,
            commits: 0,
            n: graph.n(),
            m: graph.m(),
            max_degree: graph.max_degree(),
            color_bound: engine.color_bound(),
            coloring: engine.coloring(),
            graph,
        };
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let mut tenants = self.shared.tenants.write().expect("tenant table poisoned");
        let id = tenants.len();
        tenants.push(Arc::new(Tenant {
            name: spec.name,
            shard: id % self.shared.cfg.shards,
            inbox: Mutex::new(Inbox { queue: VecDeque::new(), scheduled: false }),
            space: Condvar::new(),
            exec: Mutex::new(Exec {
                engine,
                reports: Vec::new(),
                commit_walls: Vec::new(),
                cost_since_compaction: 0,
                errors: Vec::new(),
                quarantined: false,
            }),
            snap: Swap::new(Arc::new(snapshot)),
            cost: AtomicU64::new(0),
        }));
        Ok(id)
    }

    /// Admission checks shared by every submission path.
    fn admit(&self, id: TenantId, tenant: &Tenant) -> Result<(), ServeError> {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let quota = self.shared.cfg.cost_quota;
        if quota > 0 && tenant.cost.load(Ordering::Relaxed) >= quota {
            return Err(ServeError::QuotaExhausted(id));
        }
        Ok(())
    }

    fn push(&self, id: TenantId, msg: TenantMsg, block: bool) -> Result<(), ServeError> {
        let tenant = self.shared.tenant(id)?;
        self.admit(id, &tenant)?;
        let schedule = {
            // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
            let mut inbox = tenant.inbox.lock().expect("tenant inbox poisoned");
            while inbox.queue.len() >= self.shared.cfg.queue_depth {
                if !block {
                    return Err(ServeError::Backpressure(id));
                }
                // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
                inbox = tenant.space.wait(inbox).expect("tenant inbox poisoned");
            }
            // Quarantine is decided on the executor side; check it late so
            // the answer reflects everything drained so far.
            if tenant.exec.try_lock().map(|e| e.quarantined).unwrap_or(false) {
                return Err(ServeError::Quarantined(id));
            }
            // Count the message in-flight *before* a worker can see it, or
            // a fast drain could decrement the counter below zero.
            // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
            *self.shared.inflight.lock().expect("inflight poisoned") += 1;
            inbox.queue.push_back(msg);
            let claim = !inbox.scheduled;
            inbox.scheduled = true;
            claim
        };
        if schedule {
            self.shared.enqueue_claim(tenant.shard, id);
        }
        Ok(())
    }

    /// Queues one trace operation, non-blocking.
    ///
    /// # Errors
    ///
    /// [`ServeError::Backpressure`] when the inbox is full;
    /// [`ServeError::QuotaExhausted`] / [`ServeError::Quarantined`] /
    /// [`ServeError::ShuttingDown`] / [`ServeError::UnknownTenant`] as
    /// admission dictates.
    pub fn submit(&self, id: TenantId, op: TraceOp) -> Result<(), ServeError> {
        self.push(id, TenantMsg::Op(op), false)
    }

    /// Queues one trace operation, parking the caller while the inbox is
    /// full (the deterministic-throughput path: no submission is ever
    /// dropped, so the accepted stream equals the submitted stream).
    ///
    /// # Errors
    ///
    /// As [`Serve::submit`], minus [`ServeError::Backpressure`].
    pub fn submit_blocking(&self, id: TenantId, op: TraceOp) -> Result<(), ServeError> {
        self.push(id, TenantMsg::Op(op), true)
    }

    /// Queues a commit of everything submitted since the previous one,
    /// non-blocking.
    ///
    /// # Errors
    ///
    /// As [`Serve::submit`].
    pub fn commit(&self, id: TenantId) -> Result<(), ServeError> {
        self.push(id, TenantMsg::Commit, false)
    }

    /// Queues a commit, parking while the inbox is full.
    ///
    /// # Errors
    ///
    /// As [`Serve::submit_blocking`].
    pub fn commit_blocking(&self, id: TenantId) -> Result<(), ServeError> {
        self.push(id, TenantMsg::Commit, true)
    }

    /// Queues a demand-driven palette compaction request (see
    /// [`RegionRecolor::request_compaction`]).
    ///
    /// # Errors
    ///
    /// As [`Serve::submit`].
    pub fn request_compaction(&self, id: TenantId) -> Result<(), ServeError> {
        self.push(id, TenantMsg::Compact, false)
    }

    /// The tenant's current published snapshot — lock-free, safe to call
    /// at any rate from any thread (see [`crate::snapshot::Swap`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn snapshot(&self, id: TenantId) -> Result<Arc<TenantSnapshot>, ServeError> {
        Ok(self.shared.tenant(id)?.snap.load())
    }

    /// The tenant's commit-report transcript so far (clones under the
    /// executor lock; call after [`Serve::drain`] for a settled answer).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn reports(&self, id: TenantId) -> Result<Vec<CommitReport>, ServeError> {
        let tenant = self.shared.tenant(id)?;
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let exec = tenant.exec.lock().expect("tenant executor poisoned");
        Ok(exec.reports.clone())
    }

    /// Wall time of each successful commit, aligned with
    /// [`Serve::reports`]. Excluded from the determinism contract,
    /// obviously; the pr9 bench derives its p99 latency from this.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn commit_walls(&self, id: TenantId) -> Result<Vec<std::time::Duration>, ServeError> {
        let tenant = self.shared.tenant(id)?;
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let exec = tenant.exec.lock().expect("tenant executor poisoned");
        Ok(exec.commit_walls.clone())
    }

    /// Failures the tenant survived so far.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn errors(&self, id: TenantId) -> Result<Vec<TenantError>, ServeError> {
        let tenant = self.shared.tenant(id)?;
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let exec = tenant.exec.lock().expect("tenant executor poisoned");
        Ok(exec.errors.clone())
    }

    /// The tenant's accumulated admission cost (committed `node_rounds`),
    /// read lock-free.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn cost(&self, id: TenantId) -> Result<u64, ServeError> {
        Ok(self.shared.tenant(id)?.cost.load(Ordering::Relaxed))
    }

    /// The tenant's display name.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownTenant`].
    pub fn tenant_name(&self, id: TenantId) -> Result<String, ServeError> {
        Ok(self.shared.tenant(id)?.name.clone())
    }

    /// Registered tenants.
    pub fn tenant_count(&self) -> usize {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        self.shared.tenants.read().expect("tenant table poisoned").len()
    }

    /// Blocks until every accepted message has been fully processed.
    /// Quiescence is momentary if other threads keep submitting; the
    /// tests and the CLI call this after their last submission.
    pub fn drain(&self) {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let mut inflight = self.shared.inflight.lock().expect("inflight poisoned");
        while *inflight > 0 {
            // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
            inflight = self.shared.quiet.wait(inflight).expect("inflight poisoned");
        }
    }

    /// One fingerprint over the whole fleet: every tenant's report
    /// transcript and published snapshot, in registration order. Two runs
    /// are byte-identical iff their fleet fingerprints match (modulo FNV
    /// collisions) — the pr9 gate counter.
    pub fn fleet_fingerprint(&self) -> u64 {
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let tenants = self.shared.tenants.read().expect("tenant table poisoned");
        let mut f = Fnv::new();
        for tenant in tenants.iter() {
            // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
            let exec = tenant.exec.lock().expect("tenant executor poisoned");
            f.word(reports_fingerprint(&exec.reports));
            drop(exec);
            f.word(tenant.snap.load().fingerprint());
        }
        f.digest()
    }

    /// Drains, stops the workers and joins them. Further submissions and
    /// registrations fail with [`ServeError::ShuttingDown`]. Dropping the
    /// service without calling this shuts down the same way.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.drain();
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        for worker in self.workers.drain(..) {
            // INVARIANT: a worker panic is re-raised at shutdown so failures are never silently swallowed.
            worker.join().expect("worker panicked");
        }
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        self.stop();
    }
}

impl fmt::Debug for Serve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Serve")
            .field("cfg", &self.shared.cfg)
            .field("tenants", &self.tenant_count())
            .finish_non_exhaustive()
    }
}
