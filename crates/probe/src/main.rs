//! `deco-probe`: summarize JSONL profiles recorded by the probe layer.
//!
//! ```text
//! deco-probe report <profile.jsonl> [--json <out.json>] [--bench <name>]
//! deco-probe digest <profile.jsonl>
//! ```
//!
//! `report` renders the per-phase cost breakdown to stdout and optionally
//! writes the bench-gate-compatible JSON document; `digest` prints the
//! FNV-1a fingerprint of the deterministic event subsequence (byte-equal
//! across `DECO_THREADS` / `DECO_DELIVERY` for the same scenario, so two
//! profiles can be compared with `cmp`-level confidence without diffing).

use std::process::ExitCode;

use deco_probe::report::Report;
use deco_probe::{digest_events, read_jsonl, Event};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("deco-probe: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("report") => report(&args[1..]),
        Some("digest") => digest(&args[1..]),
        _ => Err("usage: deco-probe report <profile.jsonl> [--json <out.json>] [--bench <name>]\n\
                  \x20      deco-probe digest <profile.jsonl>"
            .to_string()),
    }
}

fn load_events(path: &str) -> Result<Vec<Event>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    read_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

fn report(args: &[String]) -> Result<(), String> {
    let mut path: Option<&str> = None;
    let mut json_out: Option<&str> = None;
    let mut bench = "pr8_profile";
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => {
                json_out = Some(it.next().ok_or("--json needs a path")?.as_str());
            }
            "--bench" => {
                bench = it.next().ok_or("--bench needs a name")?.as_str();
            }
            a if path.is_none() => path = Some(a),
            a => return Err(format!("unexpected argument {a:?}")),
        }
    }
    let path = path.ok_or("report needs a profile path")?;
    let events = load_events(path)?;
    let report = Report::build(&events);
    print!("{}", report.render_text());
    println!("deterministic digest: {:#018x}", digest_events(&events));
    if let Some(out) = json_out {
        std::fs::write(out, report.to_json(bench))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out} (bench {bench:?})");
    }
    Ok(())
}

fn digest(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("digest needs a profile path")?;
    let events = load_events(path)?;
    println!("{:#018x}", digest_events(&events));
    Ok(())
}
