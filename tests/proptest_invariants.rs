//! Property-based tests: the core invariants hold on arbitrary random
//! graphs, not just the curated battery.
//!
//! The offline build has no proptest, so properties are checked over a
//! deterministic sweep of seeded random cases instead of strategy-driven
//! sampling. Every case is a pure function of its index, so a failure
//! report ("case i: n=.., seed=..") is immediately reproducible; shrinking
//! is traded away for reproducibility and zero dependencies.

use deco_core::defective::{defective_color, theorem_3_7_defect};
use deco_core::edge::legal::{edge_color, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color;
use deco_core::legal::legal_color;
use deco_core::math::{kuhn_schedule, linial_schedule, log_star};
use deco_core::params::LegalParams;
use deco_core::reduction::delta_plus_one_coloring;
use deco_graph::coloring::VertexColoring;
use deco_graph::line_graph::line_graph;
use deco_graph::properties::{
    max_independent_subset, neighborhood_independence, vertex_neighborhood_independence,
};
use deco_graph::{generators, Graph};
use deco_local::Network;

const CASES: u64 = 24;

/// The sweep analogue of the old `small_graph()` strategy: for case `i`,
/// a graph with `n` in `2..=28` and edge count derived from the seed.
fn small_graph(i: u64) -> Graph {
    let n = 2 + (i.wrapping_mul(0x9e37_79b9) % 27) as usize;
    let seed = i.wrapping_mul(7919) % 1000;
    let max_m = n * (n - 1) / 2;
    let m = (seed as usize * 7919) % (max_m + 1);
    generators::random_graph(n, m, seed)
}

/// A case-derived pseudo-random u64 (stands in for auxiliary strategy
/// parameters like masks and seeds).
fn aux(i: u64, salt: u64) -> u64 {
    let mut z = i.wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Lemma 5.1 as a universal property: I(L(G)) <= 2 for every graph.
#[test]
fn line_graph_bounded_independence() {
    for i in 0..CASES {
        let g = small_graph(i);
        let l = line_graph(&g);
        assert!(neighborhood_independence(&l) <= 2, "case {i}");
    }
}

/// Lemma 3.6: induced subgraphs never increase neighborhood independence.
#[test]
fn induced_subgraph_closure() {
    for i in 0..CASES {
        let g = small_graph(i);
        let mask = aux(i, 1);
        let keep: Vec<usize> = (0..g.n()).filter(|v| mask >> (v % 64) & 1 == 1).collect();
        let (h, _) = g.induced(&keep);
        for v in 0..h.n() {
            assert!(
                vertex_neighborhood_independence(&h, v) <= neighborhood_independence(&g),
                "case {i}, vertex {v}"
            );
        }
    }
}

/// Panconesi–Rizzi always yields a proper (2Δ-1)-edge-coloring.
#[test]
fn pr_proper_everywhere() {
    for i in 0..CASES {
        let g = small_graph(i);
        if g.m() > 0 {
            let (coloring, _) = pr_edge_color(&g);
            assert!(coloring.is_proper(&g), "case {i}");
            assert!(coloring.palette_size() < 2 * g.max_degree(), "case {i}");
        }
    }
}

/// The native edge algorithm is proper with colors below ϑ.
#[test]
fn edge_color_proper_everywhere() {
    for i in 0..CASES {
        let g = small_graph(i);
        let run = edge_color(&g, edge_log_depth(1), MessageMode::Long).unwrap();
        assert!(run.coloring.is_proper(&g), "case {i}");
        assert!(run.coloring.colors().iter().all(|&c| c < run.theta.max(1)), "case {i}");
    }
}

/// (Δ+1)-coloring is proper and within palette on every graph.
#[test]
fn delta_plus_one_everywhere() {
    for i in 0..CASES {
        let g = small_graph(i);
        let net = Network::new(&g);
        let (colors, _) = delta_plus_one_coloring(&net);
        let c = VertexColoring::new(colors);
        assert!(c.is_proper(&g), "case {i}");
        assert!(c.color_bound() <= g.max_degree() as u64 + 1, "case {i}");
    }
}

/// Algorithm 1's Theorem 3.7 bound holds with the graph's true c.
#[test]
fn defective_color_respects_theorem_3_7() {
    for i in 0..CASES {
        let g = small_graph(i);
        let p = 2 + aux(i, 2) % 3; // 2..5
        let lambda = g.max_degree() as u64;
        if lambda >= p {
            let c = neighborhood_independence(&g).max(1) as u64;
            let net = Network::new(&g);
            let run = defective_color(&net, 1, p, lambda);
            let coloring = VertexColoring::new(run.psi);
            assert!(coloring.color_bound() <= p, "case {i}");
            assert!(coloring.defect(&g) as u64 <= theorem_3_7_defect(c, 1, p, lambda), "case {i}");
        }
    }
}

/// Legal-Color with the graph's true c is always proper.
#[test]
fn legal_color_proper_with_true_c() {
    for i in 0..CASES {
        let g = small_graph(i);
        let c = neighborhood_independence(&g).max(1) as u64;
        let net = Network::new(&g);
        let run = legal_color(&net, c, LegalParams::log_depth(c, 1)).unwrap();
        assert!(run.coloring.is_proper(&g), "case {i}");
    }
}

/// Kuhn schedules never exceed their defect budget and Linial schedules
/// always land at O(Δ²).
#[test]
fn schedules_are_sound() {
    for i in 0..CASES {
        let m0 = 8 + aux(i, 3) % 999_992; // 8..1_000_000
        let delta = 1 + aux(i, 4) % 511; // 1..512
        let p = 1 + aux(i, 5) % 31; // 1..32
        let lin = linial_schedule(m0, delta);
        assert!(lin.len() as u32 <= log_star(m0) + 3, "case {i}");
        for s in &lin {
            assert!(s.q > u64::from(s.k) * delta, "case {i}");
            assert_eq!(s.defect_budget, 0, "case {i}");
        }
        let d = (delta / p).max(1);
        let kuhn = kuhn_schedule(m0, delta, d);
        let total: u64 = kuhn.iter().map(|s| s.defect_budget).sum();
        assert!(total <= d, "case {i}");
    }
}

/// Exact MIS is monotone under taking subsets.
#[test]
fn mis_monotone() {
    for i in 0..CASES {
        let g = small_graph(i);
        let mask = aux(i, 6);
        let all: Vec<usize> = (0..g.n()).collect();
        let sub: Vec<usize> = all.iter().copied().filter(|v| mask >> (v % 61) & 1 == 1).collect();
        assert!(max_independent_subset(&g, &sub) <= max_independent_subset(&g, &all), "case {i}");
    }
}

/// Cole–Vishkin 3-colors the identifier pseudo-forest decomposition of
/// any graph: colors in {0,1,2}, proper within every forest.
#[test]
fn cole_vishkin_on_arbitrary_graphs() {
    for i in 0..CASES {
        let g = generators::shuffle_idents(&small_graph(i), aux(i, 7) % 1000);
        // Forest f = each vertex's f-th out-edge toward smaller idents.
        let mut spec = vec![(0u64, 0usize); g.m()];
        for v in 0..g.n() {
            let mut parents: Vec<(u64, usize, usize)> = g
                .incident(v)
                .filter(|&(u, _)| g.ident(u) < g.ident(v))
                .map(|(u, e)| (g.ident(u), u, e))
                .collect();
            parents.sort_unstable();
            for (f, &(_, u, e)) in parents.iter().enumerate() {
                spec[e] = (f as u64, u);
            }
        }
        let net = Network::new(&g);
        let (colors, _) = deco_core::cole_vishkin::cv_three_color(&net, &spec);
        let lookup =
            |v: usize, fid: u64| colors[v].iter().find(|&&(f, _)| f == fid).map(|&(_, c)| c);
        for (e, &(fid, _)) in spec.iter().enumerate() {
            let (u, v) = g.endpoints(e);
            let (cu, cv) = (lookup(u, fid), lookup(v, fid));
            assert!(cu.is_some() && cv.is_some(), "case {i}, edge {e}");
            assert!(cu.unwrap() < 3 && cv.unwrap() < 3, "case {i}, edge {e}");
            assert_ne!(cu, cv, "case {i}, edge {e}");
        }
    }
}

/// Lemma 3.4 via the protocol: proper (d+1)-coloring along any rank
/// orientation.
#[test]
fn orientation_coloring_proper() {
    for i in 0..CASES {
        let g = small_graph(i);
        let rank_seed = aux(i, 8) % 1000;
        let ranks: Vec<u64> =
            (0..g.n()).map(|v| (v as u64).wrapping_mul(rank_seed + 1) % 5).collect();
        let o = deco_graph::orientation::Orientation::toward_smaller_rank(&g, &ranks);
        let d = o.max_out_degree(&g) as u64;
        let net = Network::new(&g);
        let (colors, _) = deco_core::orientation_color::orientation_coloring(&net, &ranks, 5, d);
        let c = VertexColoring::new(colors);
        assert!(c.is_proper(&g), "case {i}");
        assert!(c.color_bound() <= d + 1, "case {i}");
    }
}

/// Corollary 5.4 defect bound on arbitrary graphs and label widths.
#[test]
fn kuhn_labels_defect() {
    for i in 0..CASES {
        let g = small_graph(i);
        let p = 1 + aux(i, 9) % 5; // 1..6
        if g.m() > 0 {
            let net = Network::new(&g);
            let groups = vec![0u64; g.m()];
            let w = g.max_degree() as u64;
            let (phi, palette, stats) =
                deco_core::edge::kuhn_labels::kuhn_defective_edge_coloring(&net, &groups, p, w);
            assert_eq!(stats.rounds, 1, "case {i}");
            assert!(phi.iter().all(|&c| c < palette), "case {i}");
            let ec = deco_graph::coloring::EdgeColoring::new(phi);
            assert!(
                (ec.defect(&g) as u64) <= deco_core::edge::kuhn_labels::corollary_5_4_defect(w, p),
                "case {i}"
            );
        }
    }
}

/// The randomized baselines stay proper for arbitrary seeds.
#[test]
fn randomized_baselines_proper() {
    for i in 0..CASES {
        let g = small_graph(i);
        let seed = aux(i, 10) % 5000;
        if g.m() > 0 {
            let (ec, _) =
                deco_core::baselines::randomized_trial::randomized_trial_edge_color(&g, seed);
            assert!(ec.is_proper(&g), "case {i}");
        }
        let (vc, _) =
            deco_core::baselines::randomized_trial::randomized_trial_vertex_color(&g, seed);
        assert!(vc.is_proper(&g), "case {i}");
        assert!(vc.color_bound() <= 2 * g.max_degree().max(1) as u64, "case {i}");
    }
}

/// The edge variant of Algorithm 1 meets the Theorem 3.7 (c = 2) bound on
/// arbitrary graphs.
#[test]
fn edge_defective_bound() {
    for i in 0..CASES {
        let g = small_graph(i);
        let p = 2 + aux(i, 11) % 3; // 2..5
        if g.m() > 0 {
            let net = Network::new(&g);
            let groups = vec![0u64; g.m()];
            let w = g.max_degree() as u64;
            let run = deco_core::edge::defective::edge_defective_color_in_groups(
                &net,
                &groups,
                1,
                p,
                w,
                deco_core::edge::defective::MessageMode::Long,
            );
            assert!(run.psi.iter().all(|&k| k < p), "case {i}");
            let bound = deco_core::edge::defective::edge_defect_bound(1, p, w) as usize;
            let ec = deco_graph::coloring::EdgeColoring::new(run.psi);
            for e in 0..g.m() {
                assert!(ec.defect_of(&g, e) <= bound, "case {i}, edge {e}");
            }
        }
    }
}

/// The streaming recolorer's contract on arbitrary churn: after **every**
/// commit the incremental coloring is proper and uses no more colors than
/// the from-scratch pipeline's bound ϑ for the same snapshot (palette size
/// and color values alike). Sweeps graph size, degree cap, churn size and
/// repair threshold, so both the incremental path and the from-scratch
/// fallback are exercised.
#[test]
fn stream_recoloring_valid_after_every_commit() {
    use deco_core::edge::legal::edge_color_bound;
    use deco_graph::trace::churn_trace;
    use deco_stream::{queue_op, RecolorConfig, Recolorer};

    for i in 0..12u64 {
        let n = 24 + (aux(i, 12) % 120) as usize;
        let cap = 3 + (aux(i, 13) % 4) as usize; // 3..7
        let churn = 2 + (aux(i, 14) % 7) as usize; // 2..9
        let threshold = [5, 25, 60][(aux(i, 15) % 3) as usize];
        let params = edge_log_depth(1);
        let trace = churn_trace(n, cap, 3, churn, aux(i, 16));
        let mut r = Recolorer::new_with(
            trace.n0,
            params,
            MessageMode::Long,
            RecolorConfig::default().with_repair_threshold(threshold),
        )
        .unwrap();
        for (c, batch) in trace.batches().into_iter().enumerate() {
            for &op in batch {
                queue_op(&mut r, op).unwrap();
            }
            r.commit().unwrap();
            let g = r.graph();
            let coloring = r.coloring();
            assert!(coloring.is_proper(g), "case {i}, commit {c}: improper");
            let bound = edge_color_bound(&params, g.max_degree() as u64);
            assert!(
                coloring.colors().iter().all(|&col| col < bound),
                "case {i}, commit {c}: color exceeds from-scratch bound {bound}"
            );
            assert!(coloring.palette_size() as u64 <= bound, "case {i}, commit {c}");
        }
    }
}

/// Misra–Gries always meets Vizing's bound Δ+1 — the strongest centralized
/// quality oracle.
#[test]
fn misra_gries_vizing_bound() {
    for i in 0..CASES {
        let g = small_graph(i);
        let c = deco_core::baselines::misra_gries::misra_gries_edge_color(&g);
        assert!(c.is_proper(&g), "case {i}");
        if g.m() > 0 {
            assert!(c.palette_size() <= g.max_degree() + 1, "case {i}");
        }
    }
}

/// The forest-decomposition baseline is proper with O(threshold²) colors.
#[test]
fn forest_decomposition_proper() {
    for i in 0..CASES {
        let g = small_graph(i);
        let run = deco_core::baselines::forest_decomposition::forest_decomposition_coloring(&g);
        assert!(run.coloring.is_proper(&g), "case {i}");
        assert!(run.coloring.color_bound() <= run.palette, "case {i}");
    }
}
