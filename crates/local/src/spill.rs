//! The message **spill arena**: pooled storage for payloads too long for a
//! message's inline buffer.
//!
//! The delivery arenas hold `2m` fixed-size `Option<Msg>` slots (two per
//! directed edge), so every byte of the message struct is paid `4m` times
//! per network. Long payloads therefore cannot live inside the slot: before
//! this module they spilled to a per-message `Vec`, which put one heap
//! allocation (and one free) on the hot path of every long-mode message —
//! and a second pair for every *clone*, which the dense-round delivery path
//! and [`crate::Action::Broadcast`] perform per directed edge.
//!
//! The spill arena replaces that with **pooled, size-classed chunks**:
//!
//! * a chunk is an `Arc<[u64]>` whose capacity is a power of two; a payload
//!   occupies the span `[0, len)` of its chunk and the message records the
//!   span length (the chunk knows only its capacity);
//! * chunks are recycled through a **thread-local free list** with a global
//!   overflow pool, so once the arena is warm a dense long-mode round
//!   performs **zero per-message allocations**: taking a chunk is a
//!   free-list pop, cloning a spilled message is an `Arc` refcount bump,
//!   and the *last* owner's drop pushes the chunk back on the free list;
//! * accounting is byte-accurate: [`stats`] reports exactly how many chunks
//!   and bytes the arena ever had to allocate, so arena memory is no longer
//!   hidden inside anonymous `Vec`s (the PR 1/PR 2 ROADMAP item).
//!
//! The writer fills a chunk through [`Arc::get_mut`] *before* any clone of
//! the `Arc` escapes, so the whole scheme is safe Rust: a chunk is mutable
//! exactly while it has a single owner (fresh from the allocator or the
//! free list), and immutable from the moment a message references it.
//!
//! Worker threads are short-lived (the parallel engine spawns them per
//! round), so each thread's cache flushes into the global pool when the
//! thread exits; chunks dropped after thread-local storage is torn down
//! are simply freed.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Smallest chunk capacity in `u64` words. Payloads of at most
/// [`crate::Message::size_bits`]-irrelevant inline length never reach the
/// arena; 4 is the smallest power of two above every inline buffer in the
/// workspace.
const MIN_WORDS: usize = 4;

/// Capacities above this many words are not pooled: they are rare one-off
/// giants (the pool would hoard their memory forever), so they allocate and
/// free normally.
const MAX_POOLED_WORDS: usize = 1 << 16;

/// Size classes: powers of two from `MIN_WORDS` to `MAX_POOLED_WORDS`.
const BINS: usize = (MAX_POOLED_WORDS.ilog2() - MIN_WORDS.ilog2() + 1) as usize;

/// Per-thread free-list cap per size class; overflow moves in bulk to the
/// global pool.
const LOCAL_CAP: usize = 32;

/// Global free-list cap per size class; overflow is freed. Sized to
/// survive a run boundary: when a network run ends, both delivery arenas
/// release their in-flight chunks at once (two per sender of a dense
/// long-mode round), and the next run re-takes the same population — a cap
/// below that high-water would free-then-reallocate the difference on
/// every run. The idle footprint stays bounded by what was actually in
/// flight, never more.
const GLOBAL_CAP: usize = 1 << 16;

static ALLOCATED_CHUNKS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// One size class's free list.
type Bin = Vec<Arc<[u64]>>;

fn global_pool() -> &'static [Mutex<Bin>] {
    static POOL: OnceLock<Vec<Mutex<Bin>>> = OnceLock::new();
    POOL.get_or_init(|| (0..BINS).map(|_| Mutex::new(Vec::new())).collect())
}

/// The size class of a payload of `len` words, or `None` beyond the pooled
/// range. Class `i` holds chunks of exactly `MIN_WORDS << i` words.
fn class_of(len: usize) -> Option<usize> {
    let cap = len.next_power_of_two().max(MIN_WORDS);
    (cap <= MAX_POOLED_WORDS).then(|| (cap.ilog2() - MIN_WORDS.ilog2()) as usize)
}

/// Thread-local free lists; flushed to the global pool on thread exit.
struct Cache {
    bins: [Bin; BINS],
}

impl Cache {
    const fn new() -> Cache {
        const EMPTY: Bin = Vec::new();
        Cache { bins: [EMPTY; BINS] }
    }
}

impl Drop for Cache {
    fn drop(&mut self) {
        for (class, bin) in self.bins.iter_mut().enumerate() {
            if !bin.is_empty() {
                // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
                let mut global = global_pool()[class].lock().expect("spill pool poisoned");
                while let Some(c) = bin.pop() {
                    if global.len() < GLOBAL_CAP {
                        global.push(c);
                    }
                }
            }
        }
    }
}

thread_local! {
    static CACHE: RefCell<Cache> = const { RefCell::new(Cache::new()) };
}

fn fresh_chunk(class: usize) -> Arc<[u64]> {
    let words = MIN_WORDS << class;
    ALLOCATED_CHUNKS.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(8 * words as u64, Ordering::Relaxed);
    Arc::from(vec![0u64; words])
}

/// Takes a chunk able to hold `len` words and fills its `[0, len)` span via
/// `fill` before any reference to it escapes. The returned `Arc` is the
/// payload's storage: clone it into as many messages as needed (refcount
/// bumps only) and hand each one back through [`recycle`] on drop.
///
/// Warm steady state allocates nothing; a pool miss allocates one chunk
/// (visible in [`stats`]).
pub fn with_payload(len: usize, fill: impl FnOnce(&mut [u64])) -> Arc<[u64]> {
    let mut chunk = match class_of(len) {
        None => fresh_chunk_unpooled(len),
        Some(class) => CACHE
            .try_with(|cache| {
                let bin = &mut cache.borrow_mut().bins[class];
                if bin.is_empty() {
                    // Refill in bulk so a busy thread pays one lock per
                    // LOCAL_CAP/2 chunks, not one per message.
                    // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
                    let mut global = global_pool()[class].lock().expect("spill pool poisoned");
                    let take = (LOCAL_CAP / 2).min(global.len());
                    let at = global.len() - take;
                    bin.extend(global.drain(at..));
                }
                bin.pop()
            })
            .ok()
            .flatten()
            .unwrap_or_else(|| fresh_chunk(class)),
    };
    // INVARIANT: chunks parked in the free pool are unshared; the pool holds the only Arc.
    let slots = Arc::get_mut(&mut chunk).expect("pooled chunks have a single owner");
    fill(&mut slots[..len]);
    chunk
}

/// [`with_payload`] copying an existing slice.
pub fn take(vals: &[u64]) -> Arc<[u64]> {
    with_payload(vals.len(), |dst| dst.copy_from_slice(vals))
}

fn fresh_chunk_unpooled(len: usize) -> Arc<[u64]> {
    ALLOCATED_CHUNKS.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(8 * len as u64, Ordering::Relaxed);
    Arc::from(vec![0u64; len])
}

/// Returns `chunk` to the pool if the caller holds the last reference.
/// Call from the message's `Drop`; clones dropped while other owners
/// remain are no-ops (the last owner recycles for everyone).
pub fn recycle(chunk: &mut Arc<[u64]>) {
    if Arc::strong_count(chunk) != 1 {
        return; // another message (or an arena slot) still owns the chunk
    }
    let Some(class) = class_of(chunk.len()) else {
        return; // oversize chunks free normally
    };
    debug_assert_eq!(chunk.len(), MIN_WORDS << class, "pooled chunks are exact classes");
    let returned = CACHE.try_with(|cache| {
        let bin = &mut cache.borrow_mut().bins[class];
        if bin.len() < LOCAL_CAP {
            bin.push(chunk.clone());
            return true;
        }
        // Local bin full: move half to the global pool, keep recycling.
        // INVARIANT: a poisoned lock means another thread panicked while holding it; propagating that panic is the intended failure mode.
        let mut global = global_pool()[class].lock().expect("spill pool poisoned");
        let keep = LOCAL_CAP / 2;
        while bin.len() > keep {
            // INVARIANT: the loop condition guarantees the bin holds more than `keep` entries, so pop succeeds.
            let c = bin.pop().expect("bin above keep");
            if global.len() < GLOBAL_CAP {
                global.push(c);
            }
        }
        bin.push(chunk.clone());
        true
    });
    // After TLS teardown (process or thread exit) the chunk just frees.
    let _ = returned;
}

/// Monotone allocation counters of the spill arena. Pool hits do not move
/// them: the difference between two snapshots is exactly the memory the
/// arena had to request from the allocator in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillStats {
    /// Chunks ever allocated (pool misses + oversize payloads).
    pub allocated_chunks: u64,
    /// Bytes ever allocated for chunks (capacity, not payload, bytes).
    pub allocated_bytes: u64,
}

/// Reads the arena's allocation counters.
pub fn stats() -> SpillStats {
    SpillStats {
        allocated_chunks: ALLOCATED_CHUNKS.load(Ordering::Relaxed),
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_powers_of_two_from_min() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(4), Some(0));
        assert_eq!(class_of(5), Some(1));
        assert_eq!(class_of(8), Some(1));
        assert_eq!(class_of(9), Some(2));
        assert_eq!(class_of(MAX_POOLED_WORDS), Some(BINS - 1));
        assert_eq!(class_of(MAX_POOLED_WORDS + 1), None);
    }

    #[test]
    fn payload_roundtrip_and_reuse() {
        let a = take(&[1, 2, 3, 4, 5]);
        assert_eq!(&a[..5], &[1, 2, 3, 4, 5]);
        assert_eq!(a.len(), 8, "capacity is the class size");
        // Recycling the last owner makes the chunk available again: the next
        // same-class take returns storage without growing the counters.
        let mut a = a;
        recycle(&mut a);
        drop(a);
        let before = stats();
        let b = take(&[9, 9, 9, 9, 9, 9]);
        assert_eq!(&b[..6], &[9, 9, 9, 9, 9, 9]);
        assert_eq!(stats(), before, "warm take must not allocate");
    }

    #[test]
    fn recycle_with_live_clones_is_a_noop() {
        let mut a = take(&[7; 10]);
        let b = a.clone();
        recycle(&mut a); // b still owns the chunk: must not enter the pool
        drop(a);
        assert_eq!(&b[..10], &[7; 10]);
        // b is now the last owner; its recycle returns the chunk.
        let mut b = b;
        recycle(&mut b);
    }

    #[test]
    fn cross_thread_recycling_flushes_to_global() {
        // A chunk taken here, dropped on another thread, must flow through
        // that thread's cache into the global pool at thread exit — and be
        // reusable from here.
        let chunk = take(&[3; 40]);
        let class = class_of(40).unwrap();
        std::thread::spawn(move || {
            let mut c = chunk;
            recycle(&mut c);
        })
        .join()
        .unwrap();
        let pooled = global_pool()[class].lock().unwrap().len();
        assert!(pooled >= 1, "exited thread must flush its cache globally");
    }

    #[test]
    fn oversize_payloads_bypass_the_pool() {
        let before = stats();
        let mut big = with_payload(MAX_POOLED_WORDS + 1, |d| d[0] = 1);
        assert_eq!(big.len(), MAX_POOLED_WORDS + 1);
        recycle(&mut big); // no-op: not a pooled class
        drop(big);
        let after = stats();
        assert_eq!(after.allocated_chunks, before.allocated_chunks + 1);
        // Oversize chunks are unpooled and exact-capacity: the byte counter
        // moves by precisely the requested span, not a class rounding.
        assert_eq!(
            after.allocated_bytes,
            before.allocated_bytes + 8 * (MAX_POOLED_WORDS + 1) as u64
        );
    }

    /// The global-overflow path: recycling into a full thread-local bin must
    /// move half the bin to the global pool, and re-taking the same
    /// population must drain it back through the bulk refill — with
    /// [`stats`] byte-accurate across the whole churn (zero allocations once
    /// the population exists).
    #[test]
    fn local_overflow_spills_half_to_global_and_retake_drains_it() {
        // A fresh thread starts with an empty thread-local cache, so every
        // count below is exact. LEN picks size class 3 (32-word, 256-byte
        // chunks), which no other test touches.
        std::thread::spawn(|| {
            const LEN: usize = 20;
            let class = class_of(LEN).unwrap();
            assert_eq!(MIN_WORDS << class, 32);
            let chunk_bytes = 8 * (MIN_WORDS << class) as u64;
            // Start from a known global state for this class.
            global_pool()[class].lock().unwrap().clear();

            // Cold phase: LOCAL_CAP + 1 live chunks, every one a pool miss.
            let before = stats();
            let total = LOCAL_CAP + 1;
            let mut live: Vec<_> = (0..total).map(|i| take(&[i as u64; LEN])).collect();
            let after_take = stats();
            assert_eq!(after_take.allocated_chunks - before.allocated_chunks, total as u64);
            assert_eq!(
                after_take.allocated_bytes - before.allocated_bytes,
                total as u64 * chunk_bytes,
                "cold takes must account capacity bytes exactly"
            );

            // Recycle all of them. The first LOCAL_CAP recycles fill the
            // local bin; the last one finds it full and moves half to the
            // global pool before recycling.
            for c in live.iter_mut() {
                recycle(c);
            }
            drop(live);
            let pooled = global_pool()[class].lock().unwrap().len();
            assert_eq!(pooled, LOCAL_CAP / 2, "overflow must move exactly half the local bin");

            // Warm phase: re-take the full population. The local bin serves
            // the first chunks; when it runs dry the bulk refill drains the
            // global pool. No path may allocate.
            let live: Vec<_> = (0..total).map(|i| take(&[!(i as u64); LEN])).collect();
            assert_eq!(stats(), after_take, "warm re-take must not allocate");
            assert!(
                global_pool()[class].lock().unwrap().is_empty(),
                "bulk refill must drain the global pool"
            );
            for (i, c) in live.iter().enumerate() {
                assert_eq!(
                    &c[..LEN],
                    &[!(i as u64); LEN],
                    "refilled chunk must carry fresh payload"
                );
            }
        })
        .join()
        .unwrap();
    }
}
