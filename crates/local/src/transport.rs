//! The **transport seam**: who decides each message's fate.
//!
//! The paper's model is perfectly synchronous — a message sent over an edge
//! in round `r` arrives in round `r + 1`, always. The ROADMAP's north star
//! is a long-lived service where that is a polite fiction: messages get
//! delayed, dropped and reordered. This module makes the seam explicit:
//! the slot engine asks a [`Transport`] for the *fate* of every message it
//! posts, keyed by the message's directed-edge slot and the posting round.
//!
//! Two implementations ship:
//!
//! * [`InProcess`] — the default: every fate is [`Fate::Deliver`], and
//!   [`Transport::is_perfect`] returns `true`, which lets the engine take
//!   the exact pre-seam code path (adaptive delivery, parallel stepping,
//!   stale-slot skips). The fault-free engine stays the bit-exact oracle.
//! * [`FaultyTransport`] — deterministic seed-driven faults: per-message
//!   drop, delay by `k` rounds, and bounded reorder, each at a configurable
//!   rate in parts per million. The fate of a message is a pure hash of
//!   `(seed, slot, round)` — no mutable state, no ordering dependence — so
//!   a faulty run is exactly reproducible from its seed, at any thread
//!   count and on either engine.
//!
//! # Fault semantics
//!
//! * **Drop** — the message is destroyed after being counted as sent; the
//!   receiver simply never sees it. Dropped traffic is accounted
//!   byte-accurately in [`RoundLoad::transport_dropped`] /
//!   [`RoundLoad::transport_dropped_bits`](crate::RoundLoad) and
//!   [`RunStats::transport_dropped`](crate::RunStats).
//! * **Delay(k)** — the message arrives `k` rounds late (round
//!   `r + 1 + k` instead of `r + 1`). The LOCAL model allows one message
//!   per directed edge per round, so if a fresher message occupies the
//!   edge at the late arrival round, the delayed one is postponed a further
//!   round (repeatedly if necessary) — late messages never displace fresh
//!   ones. A delayed message addressed to a node that has halted by its
//!   arrival round is dropped exactly like any send toward a halted node.
//! * **Reorder** — realized as a one-round deferral: the deferred message
//!   is overtaken by the next round's traffic on neighboring edges (and,
//!   via the postponement rule, possibly by later sends on its own edge),
//!   which yields a bounded reordering window without any unbounded
//!   buffering.
//!
//! Because every non-perfect transport forces the engine onto a sequential,
//! scan-delivery, take-semantics path (see the `network` module), faulty
//! runs remain bit-deterministic: same graph + protocol + transport seed ⇒
//! identical outputs, stats and profiles, regardless of `DECO_THREADS` or
//! `DECO_DELIVERY`.

/// What a [`Transport`] does with one posted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// Arrive next round, as the synchronous model promises.
    Deliver,
    /// Destroy the message (counted as sent, never delivered).
    Drop,
    /// Arrive `k ≥ 1` rounds late; see the module docs for the collision
    /// (postponement) rule.
    Delay(u32),
}

/// A message transport: decides, per directed-edge slot and round, whether
/// the slot engine delivers a posted message on time, late, or never.
///
/// The engine consults the transport at every post (the round-boundary
/// delivery hook) and executes the returned [`Fate`] itself — transports
/// are pure *policy*, they never touch message payloads or arena storage.
/// Implementations must be deterministic functions of `(slot, round)`:
/// the simulator's reproducibility contract extends to faulty runs, and
/// the self-stabilizing repair layer in `deco-stream` relies on replaying
/// a transport's decisions exactly.
///
/// A transport reporting [`Transport::is_perfect`] `= true` promises every
/// fate is [`Fate::Deliver`]; the engine then skips the fault machinery
/// entirely and runs the original zero-allocation path bit-for-bit
/// (adaptive push/scan delivery, parallel stepping). A non-perfect
/// transport — even one whose fault rates are all zero — routes through
/// the fault-tolerant path: sequential stepping, scan delivery, and
/// take-semantics fetches, which the differential tests pin against the
/// perfect path at zero rates.
pub trait Transport: std::fmt::Debug + Send + Sync {
    /// The fate of the message posted into directed-edge slot `slot`
    /// during round `round` (deliverable in `round + 1`).
    fn fate(&self, slot: usize, round: usize) -> Fate;

    /// Whether this transport never faults (lets the engine take the exact
    /// fault-free fast path). Defaults to `false`.
    fn is_perfect(&self) -> bool {
        false
    }
}

/// The default in-process transport: perfect synchronous delivery through
/// the double-buffered slot arenas. See [`Transport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcess;

impl Transport for InProcess {
    fn fate(&self, _slot: usize, _round: usize) -> Fate {
        Fate::Deliver
    }

    fn is_perfect(&self) -> bool {
        true
    }
}

/// Rates are expressed in parts per million of posted messages.
const PPM: u64 = 1_000_000;

/// Deterministic seed-driven fault injection. See the module docs for the
/// fault semantics and the determinism contract.
///
/// # Example
///
/// ```
/// use deco_local::{Fate, FaultyTransport, Transport};
///
/// let t = FaultyTransport::new(42).with_drop(250_000); // 25% drop rate
/// // Fates are a pure function of (seed, slot, round): always replayable.
/// assert_eq!(t.fate(3, 7), t.fate(3, 7));
/// assert!(!t.is_perfect());
/// let dropped = (0..1000).filter(|&s| t.fate(s, 1) == Fate::Drop).count();
/// assert!(dropped > 150 && dropped < 350, "~25% of 1000, got {dropped}");
/// ```
#[derive(Debug, Clone)]
pub struct FaultyTransport {
    seed: u64,
    drop_ppm: u32,
    delay_ppm: u32,
    max_delay: u32,
    reorder_ppm: u32,
}

impl FaultyTransport {
    /// A faulty transport with the given seed and all fault rates zero.
    ///
    /// Note that a zero-rate faulty transport still reports
    /// [`Transport::is_perfect`] `= false`: it exercises the engine's full
    /// fault-tolerant path, which the tests differentially pin against the
    /// perfect [`InProcess`] path.
    pub fn new(seed: u64) -> FaultyTransport {
        FaultyTransport { seed, drop_ppm: 0, delay_ppm: 0, max_delay: 1, reorder_ppm: 0 }
    }

    /// Sets the drop rate in parts per million (capped at 1 000 000).
    pub fn with_drop(mut self, ppm: u32) -> FaultyTransport {
        self.drop_ppm = ppm.min(PPM as u32);
        self
    }

    /// Sets the delay rate in parts per million and the maximum lateness:
    /// a delayed message arrives `k ∈ [1, max_delay]` rounds late, with
    /// `k` drawn deterministically from the fate hash.
    pub fn with_delay(mut self, ppm: u32, max_delay: u32) -> FaultyTransport {
        self.delay_ppm = ppm.min(PPM as u32);
        self.max_delay = max_delay.max(1);
        self
    }

    /// Sets the reorder rate in parts per million: each selected message is
    /// deferred one round, letting adjacent traffic overtake it (a bounded
    /// reordering window — see the module docs).
    pub fn with_reorder(mut self, ppm: u32) -> FaultyTransport {
        self.reorder_ppm = ppm.min(PPM as u32);
        self
    }

    /// The transport's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// SplitMix64-style finalizer over `(seed, slot, round)` — the whole
    /// source of randomness, so fates are replayable by construction.
    fn mix(&self, slot: usize, round: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_mul(0xD6E8_FEB8_6659_FD93)
            .wrapping_add((slot as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((round as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Transport for FaultyTransport {
    fn fate(&self, slot: usize, round: usize) -> Fate {
        let h = self.mix(slot, round);
        let r = (h % PPM) as u32;
        if r < self.drop_ppm {
            return Fate::Drop;
        }
        if r < self.drop_ppm.saturating_add(self.delay_ppm) {
            let k = 1 + ((h >> 32) % u64::from(self.max_delay)) as u32;
            return Fate::Delay(k);
        }
        let faulted = self.drop_ppm.saturating_add(self.delay_ppm).saturating_add(self.reorder_ppm);
        if r < faulted {
            return Fate::Delay(1);
        }
        Fate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_is_perfect_and_always_delivers() {
        assert!(InProcess.is_perfect());
        for slot in [0usize, 1, 999] {
            for round in [0usize, 5, 1_000] {
                assert_eq!(InProcess.fate(slot, round), Fate::Deliver);
            }
        }
    }

    #[test]
    fn zero_rate_faulty_transport_delivers_but_is_not_perfect() {
        let t = FaultyTransport::new(7);
        assert!(!t.is_perfect());
        assert!((0..500).all(|s| t.fate(s, 3) == Fate::Deliver));
    }

    #[test]
    fn fates_are_deterministic_in_seed_slot_round() {
        let a = FaultyTransport::new(11).with_drop(300_000).with_delay(300_000, 4);
        let b = FaultyTransport::new(11).with_drop(300_000).with_delay(300_000, 4);
        for slot in 0..200 {
            for round in 0..20 {
                assert_eq!(a.fate(slot, round), b.fate(slot, round));
            }
        }
        // A different seed decides differently somewhere.
        let c = FaultyTransport::new(12).with_drop(300_000).with_delay(300_000, 4);
        assert!((0..200usize).any(|s| a.fate(s, 1) != c.fate(s, 1)));
    }

    #[test]
    fn rates_are_roughly_honored() {
        let t = FaultyTransport::new(99).with_drop(100_000).with_delay(100_000, 3);
        let n = 20_000usize;
        let mut drops = 0usize;
        let mut delays = 0usize;
        for s in 0..n {
            match t.fate(s, 2) {
                Fate::Drop => drops += 1,
                Fate::Delay(k) => {
                    assert!((1..=3).contains(&k));
                    delays += 1;
                }
                Fate::Deliver => {}
            }
        }
        let tol = n / 50; // 2% absolute tolerance on a 10% rate
        assert!(drops.abs_diff(n / 10) < tol, "drops {drops} far from {}", n / 10);
        assert!(delays.abs_diff(n / 10) < tol, "delays {delays} far from {}", n / 10);
    }

    #[test]
    fn reorder_defers_exactly_one_round() {
        let t = FaultyTransport::new(5).with_reorder(PPM as u32);
        assert!((0..100).all(|s| t.fate(s, 1) == Fate::Delay(1)));
    }

    #[test]
    fn full_drop_rate_drops_everything() {
        let t = FaultyTransport::new(1).with_drop(u32::MAX); // capped at 100%
        assert!((0..100).all(|s| t.fate(s, 1) == Fate::Drop));
    }
}
