//! The synchronous network simulator.

use crate::message::Message;
use crate::stats::RunStats;
use deco_graph::{Graph, Vertex};

/// Immutable per-node view handed to every [`Protocol`] callback.
///
/// Global quantities (`n`, `max_degree`) are common knowledge, exactly as the
/// paper assumes vertices know `n` and Δ.
#[derive(Debug)]
pub struct NodeCtx<'a> {
    /// This node's vertex index in the host graph.
    pub vertex: Vertex,
    /// This node's distinct identifier (the paper's `Id`).
    pub ident: u64,
    /// Sorted neighbor vertex indices.
    pub neighbors: &'a [Vertex],
    /// Identifiers of the neighbors, aligned with `neighbors`.
    ///
    /// The LOCAL model lets endpoints learn each other's identifiers in one
    /// round; we provide them up front and charge no round for it (every
    /// algorithm in the paper spends its first round exchanging identifiers
    /// or colors anyway, and the `O(1)` additive term absorbs it — see
    /// Lemma 5.2's `+O(1)`).
    pub neighbor_idents: &'a [u64],
    /// Number of vertices in the network (common knowledge).
    pub n: usize,
    /// Maximum degree Δ of the network (common knowledge).
    pub max_degree: usize,
    /// Current round number: 0 in [`Protocol::start`], then 1, 2, ... in
    /// [`Protocol::round`].
    pub round: usize,
}

impl NodeCtx<'_> {
    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Convenience: the same message addressed to every neighbor.
    pub fn broadcast<M: Clone>(&self, msg: M) -> Vec<(Vertex, M)> {
        self.neighbors.iter().map(|&u| (u, msg.clone())).collect()
    }

    /// The identifier of neighbor `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a neighbor of this node.
    pub fn ident_of(&self, u: Vertex) -> u64 {
        let i = self
            .neighbors
            .binary_search(&u)
            .unwrap_or_else(|_| panic!("vertex {u} is not a neighbor of {}", self.vertex));
        self.neighbor_idents[i]
    }
}

/// What a node does at the end of a round.
#[derive(Debug, Clone)]
pub enum Action<M> {
    /// Keep running; send the given messages (addressed to neighbors).
    Continue(Vec<(Vertex, M)>),
    /// Halt after sending the given messages. A halted node no longer sends,
    /// and its inbox is discarded.
    Halt(Vec<(Vertex, M)>),
}

impl<M> Action<M> {
    /// Halt without sending anything.
    pub fn halt() -> Action<M> {
        Action::Halt(Vec::new())
    }

    /// Continue without sending anything (idle round).
    pub fn idle() -> Action<M> {
        Action::Continue(Vec::new())
    }
}

/// A per-node state machine run by [`Network::run`].
///
/// The simulator creates one value per vertex, calls [`Protocol::start`]
/// once (round 0, before any delivery), then calls [`Protocol::round`] once
/// per synchronous round with the messages delivered that round, until every
/// node has returned [`Action::Halt`]. Finally [`Protocol::finish`] extracts
/// each node's output.
pub trait Protocol {
    /// Message type exchanged by this protocol.
    type Msg: Message;
    /// Per-node result extracted when the run completes.
    type Output;

    /// Called once before the first round; returns the initial messages.
    fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, Self::Msg)>;

    /// Called once per round with the messages received this round
    /// (sender-sorted). Returns the node's action for the round.
    fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, Self::Msg)]) -> Action<Self::Msg>;

    /// Extracts the node's output after the network has quiesced.
    fn finish(self, ctx: &NodeCtx<'_>) -> Self::Output;
}

/// The result of simulating a protocol on a network.
#[derive(Debug, Clone)]
pub struct Run<T> {
    /// Per-vertex outputs, indexed by vertex.
    pub outputs: Vec<T>,
    /// Round/message accounting for the run.
    pub stats: RunStats,
}

impl<T> Run<T> {
    /// Maps the per-vertex outputs, keeping the stats.
    pub fn map<U>(self, f: impl FnMut(T) -> U) -> Run<U> {
        Run { outputs: self.outputs.into_iter().map(f).collect(), stats: self.stats }
    }
}

/// Load observed in one simulated round (see [`Network::run_profiled`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundLoad {
    /// Messages delivered in this round.
    pub messages: usize,
    /// Total bits delivered in this round.
    pub bits: usize,
    /// Nodes still live at the start of the round.
    pub live_nodes: usize,
}

/// A simulated synchronous network over a host graph.
///
/// The simulator is deterministic: nodes are stepped in vertex order and
/// inboxes are sorted by sender. See the crate-level example.
#[derive(Debug)]
pub struct Network<'g> {
    graph: &'g Graph,
    neighbors: Vec<Vec<Vertex>>,
    neighbor_idents: Vec<Vec<u64>>,
    round_cap: usize,
}

impl<'g> Network<'g> {
    /// Wraps a host graph in a simulator.
    pub fn new(graph: &'g Graph) -> Network<'g> {
        let neighbors: Vec<Vec<Vertex>> =
            (0..graph.n()).map(|v| graph.neighbors(v).collect()).collect();
        let neighbor_idents: Vec<Vec<u64>> = neighbors
            .iter()
            .map(|ns| ns.iter().map(|&u| graph.ident(u)).collect())
            .collect();
        Network { graph, neighbors, neighbor_idents, round_cap: 1_000_000 }
    }

    /// The host graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Sets a safety cap on rounds (default one million).
    ///
    /// Exceeding the cap panics — it always indicates a protocol that fails
    /// to halt, never a legitimate run at the scales this workspace targets.
    pub fn with_round_cap(mut self, cap: usize) -> Network<'g> {
        self.round_cap = cap;
        self
    }

    /// Runs `protocol` (one instance per vertex, built by `make`) to
    /// quiescence and returns per-vertex outputs plus stats.
    ///
    /// # Panics
    ///
    /// Panics if a node addresses a message to a non-neighbor, or the round
    /// cap is exceeded.
    pub fn run<P, F>(&self, make: F) -> Run<P::Output>
    where
        P: Protocol,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        self.run_profiled(make).0
    }

    /// Like [`Network::run`], but additionally returns the per-round load
    /// profile — useful to visualize an algorithm's phase structure (e.g.
    /// the quiet `log*` prefix followed by the busy recursion levels).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Network::run`].
    pub fn run_profiled<P, F>(&self, mut make: F) -> (Run<P::Output>, Vec<RoundLoad>)
    where
        P: Protocol,
        F: FnMut(&NodeCtx<'_>) -> P,
    {
        let n = self.graph.n();
        let mut stats = RunStats::zero();
        let mut profile: Vec<RoundLoad> = Vec::new();

        let ctx_for = |v: Vertex, round: usize| NodeCtx {
            vertex: v,
            ident: self.graph.ident(v),
            neighbors: &self.neighbors[v],
            neighbor_idents: &self.neighbor_idents[v],
            n,
            max_degree: self.graph.max_degree(),
            round,
        };

        let mut nodes: Vec<P> = Vec::with_capacity(n);
        let mut halted = vec![false; n];
        // inboxes[v] collects (sender, msg) for the next delivery.
        let mut inboxes: Vec<Vec<(Vertex, P::Msg)>> = (0..n).map(|_| Vec::new()).collect();

        // Round 0: start.
        for v in 0..n {
            let ctx = ctx_for(v, 0);
            let mut p = make(&ctx);
            let out = p.start(&ctx);
            self.post(v, out, &mut inboxes, &mut stats);
            nodes.push(p);
        }

        let mut round = 0usize;
        loop {
            let all_halted = halted.iter().all(|&h| h);
            let any_mail = inboxes.iter().any(|b| !b.is_empty());
            if all_halted {
                break;
            }
            if !any_mail {
                // No messages in flight: step live nodes with empty inboxes
                // (some protocols count silent rounds via barriers).
            }
            round += 1;
            assert!(
                round <= self.round_cap,
                "round cap {} exceeded: protocol failed to halt",
                self.round_cap
            );
            let live = halted.iter().filter(|&&h| !h).count();
            let (msgs_before, bits_before) = (stats.messages, stats.total_message_bits);
            // Swap out inboxes for this round's delivery.
            let mut delivered: Vec<Vec<(Vertex, P::Msg)>> =
                (0..n).map(|_| Vec::new()).collect();
            std::mem::swap(&mut delivered, &mut inboxes);
            let mut delivered_msgs = 0usize;
            let mut delivered_bits = 0usize;
            for v in 0..n {
                if halted[v] {
                    continue;
                }
                let mut inbox = std::mem::take(&mut delivered[v]);
                inbox.sort_by_key(|&(s, _)| s);
                delivered_msgs += inbox.len();
                delivered_bits += inbox.iter().map(|(_, m)| m.size_bits()).sum::<usize>();
                let ctx = ctx_for(v, round);
                match nodes[v].round(&ctx, &inbox) {
                    Action::Continue(out) => self.post(v, out, &mut inboxes, &mut stats),
                    Action::Halt(out) => {
                        self.post(v, out, &mut inboxes, &mut stats);
                        halted[v] = true;
                    }
                }
            }
            let _ = (msgs_before, bits_before);
            profile.push(RoundLoad {
                messages: delivered_msgs,
                bits: delivered_bits,
                live_nodes: live,
            });
        }
        stats.rounds = round;

        let mut outputs = Vec::with_capacity(n);
        for (v, p) in nodes.into_iter().enumerate() {
            let ctx = ctx_for(v, round);
            outputs.push(p.finish(&ctx));
        }
        (Run { outputs, stats }, profile)
    }

    fn post<M: Message>(
        &self,
        from: Vertex,
        out: Vec<(Vertex, M)>,
        inboxes: &mut [Vec<(Vertex, M)>],
        stats: &mut RunStats,
    ) {
        for (to, msg) in out {
            assert!(
                self.neighbors[from].binary_search(&to).is_ok(),
                "node {from} addressed a message to non-neighbor {to}"
            );
            stats.record_message(msg.size_bits());
            inboxes[to].push((from, msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    /// Flood the maximum identifier for `radius` rounds.
    struct FloodMax {
        radius: usize,
        best: u64,
    }

    impl Protocol for FloodMax {
        type Msg = u64;
        type Output = u64;

        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            self.best = ctx.ident;
            ctx.broadcast(self.best)
        }

        fn round(&mut self, ctx: &NodeCtx<'_>, inbox: &[(Vertex, u64)]) -> Action<u64> {
            for &(_, v) in inbox {
                self.best = self.best.max(v);
            }
            if ctx.round >= self.radius {
                Action::halt()
            } else {
                Action::Continue(ctx.broadcast(self.best))
            }
        }

        fn finish(self, _ctx: &NodeCtx<'_>) -> u64 {
            self.best
        }
    }

    #[test]
    fn flood_on_path_reaches_radius() {
        let g = generators::path(10);
        let net = Network::new(&g);
        let run = net.run(|_| FloodMax { radius: 3, best: 0 });
        assert_eq!(run.stats.rounds, 3);
        // Vertex 0 can have heard from at most distance 3.
        assert_eq!(run.outputs[0], 4);
        // Vertex 9 has the max already.
        assert_eq!(run.outputs[9], 10);
    }

    #[test]
    fn flood_covers_whole_graph() {
        let g = generators::cycle(8);
        let run = Network::new(&g).run(|_| FloodMax { radius: 4, best: 0 });
        assert!(run.outputs.iter().all(|&b| b == 8));
    }

    #[test]
    fn message_accounting() {
        let g = generators::star(4); // 3 edges
        let run = Network::new(&g).run(|_| FloodMax { radius: 1, best: 0 });
        // start: every vertex broadcasts once over each incident edge;
        // in round 1 every node halts without sending.
        assert_eq!(run.stats.messages, 2 * g.m());
        assert!(run.stats.max_message_bits >= 3); // ident 4 needs 3 bits
        assert_eq!(run.stats.rounds, 1);
    }

    #[test]
    fn deterministic_runs() {
        let g = generators::random_graph(30, 60, 5);
        let a = Network::new(&g).run(|_| FloodMax { radius: 2, best: 0 });
        let b = Network::new(&g).run(|_| FloodMax { radius: 2, best: 0 });
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.stats, b.stats);
    }

    struct NeverHalts;
    impl Protocol for NeverHalts {
        type Msg = u64;
        type Output = ();
        fn start(&mut self, ctx: &NodeCtx<'_>) -> Vec<(Vertex, u64)> {
            ctx.broadcast(1)
        }
        fn round(&mut self, ctx: &NodeCtx<'_>, _inbox: &[(Vertex, u64)]) -> Action<u64> {
            Action::Continue(ctx.broadcast(1))
        }
        fn finish(self, _ctx: &NodeCtx<'_>) {}
    }

    #[test]
    #[should_panic(expected = "round cap")]
    fn round_cap_triggers() {
        let g = generators::path(3);
        let _ = Network::new(&g).with_round_cap(10).run(|_| NeverHalts);
    }

    struct ImmediateHalt;
    impl Protocol for ImmediateHalt {
        type Msg = ();
        type Output = u64;
        fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, ())> {
            Vec::new()
        }
        fn round(&mut self, _ctx: &NodeCtx<'_>, _inbox: &[(Vertex, ())]) -> Action<()> {
            Action::halt()
        }
        fn finish(self, ctx: &NodeCtx<'_>) -> u64 {
            ctx.ident
        }
    }

    #[test]
    fn silent_protocol_takes_one_round() {
        let g = generators::path(4);
        let run = Network::new(&g).run(|_| ImmediateHalt);
        assert_eq!(run.stats.rounds, 1);
        assert_eq!(run.stats.messages, 0);
        assert_eq!(run.outputs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn ctx_ident_lookup() {
        let g = generators::shuffle_idents(&generators::path(5), 9);
        struct Check;
        impl Protocol for Check {
            type Msg = ();
            type Output = ();
            fn start(&mut self, _ctx: &NodeCtx<'_>) -> Vec<(Vertex, ())> {
                Vec::new()
            }
            fn round(&mut self, ctx: &NodeCtx<'_>, _inbox: &[(Vertex, ())]) -> Action<()> {
                for &u in ctx.neighbors {
                    let _ = ctx.ident_of(u);
                }
                Action::halt()
            }
            fn finish(self, _ctx: &NodeCtx<'_>) {}
        }
        let run = Network::new(&g).run(|_| Check);
        assert_eq!(run.stats.rounds, 1);
    }

    #[test]
    fn run_map_keeps_stats() {
        let g = generators::path(3);
        let run = Network::new(&g).run(|_| ImmediateHalt).map(|x| x * 10);
        assert_eq!(run.outputs, vec![10, 20, 30]);
        assert_eq!(run.stats.rounds, 1);
    }

    #[test]
    fn profile_accounts_per_round() {
        let g = generators::cycle(6);
        let (run, profile) = Network::new(&g).run_profiled(|_| FloodMax { radius: 2, best: 0 });
        assert_eq!(profile.len(), run.stats.rounds);
        // Round 1 delivers the start broadcasts (2 per vertex on a cycle);
        // round 2 the re-broadcasts; all 6 nodes live throughout.
        assert_eq!(profile[0].messages, 12);
        assert_eq!(profile[1].messages, 12);
        assert!(profile.iter().all(|r| r.live_nodes == 6));
        let total: usize = profile.iter().map(|r| r.messages).sum();
        // The profile counts *delivered* messages; sends into halted nodes
        // (none here) would be dropped, so delivered <= sent.
        assert_eq!(total, run.stats.messages);
        let bits: usize = profile.iter().map(|r| r.bits).sum();
        assert!(bits <= run.stats.total_message_bits);
    }
}
