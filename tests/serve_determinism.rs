//! The `deco-serve` determinism theorem, pinned: the same tenant traces
//! produce **byte-identical** per-tenant `CommitReport` transcripts,
//! snapshots and colorings at any shard count, because per-tenant commit
//! order is total (single-drainer claims) and every commit is
//! deterministic (the `RegionRecolor` contract). Work stealing may move
//! tenants between workers freely; results must not notice.

use deco_graph::trace::{churn_trace, Trace};
use deco_serve::{EngineKind, Serve, ServeConfig, TenantSpec};
use deco_stream::{CommitReport, RecolorConfig};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// One tenant's settled outcome: the full report transcript plus the
/// final published snapshot's fingerprint.
type Outcome = (Vec<CommitReport>, u64);

/// Builds a small heterogeneous fleet (engines, thresholds and trace
/// seeds all varying per tenant), streams every trace, drains, and
/// returns per-tenant outcomes in registration order.
fn run_fleet(shards: usize, tenants: usize) -> (Vec<Outcome>, u64) {
    let traces: Vec<Trace> = (0..tenants as u64)
        .map(|i| churn_trace(36 + (i as usize % 5) * 8, 4, 3, 4, 0xf1ee7 ^ i))
        .collect();
    let serve = Serve::start(ServeConfig::default().with_shards(shards));
    let ids: Vec<_> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let engine = if i % 2 == 0 { EngineKind::Legacy } else { EngineKind::Segmented };
            let threshold = [10, 25, 60][i % 3];
            let spec = TenantSpec::new(format!("t{i}"), t.n0)
                .with_engine(engine)
                .with_config(RecolorConfig::default().with_repair_threshold(threshold));
            serve.register(spec).unwrap()
        })
        .collect();
    // Interleave tenants batch by batch (rather than tenant by tenant) so
    // many tenants are genuinely in flight together and stealing has
    // something to steal.
    let max_batches = traces.iter().map(|t| t.batches().len()).max().unwrap_or(0);
    for b in 0..max_batches {
        for (&id, trace) in ids.iter().zip(&traces) {
            let batches = trace.batches();
            let Some(batch) = batches.get(b) else { continue };
            for &op in *batch {
                serve.submit_blocking(id, op).unwrap();
            }
            serve.commit_blocking(id).unwrap();
        }
    }
    serve.drain();
    let outcomes = ids
        .iter()
        .map(|&id| {
            assert!(serve.errors(id).unwrap().is_empty(), "tenant {id} errored");
            let snap = serve.snapshot(id).unwrap();
            assert!(snap.coloring.is_proper(&snap.graph), "tenant {id}: improper");
            (serve.reports(id).unwrap(), snap.fingerprint())
        })
        .collect();
    let fleet = serve.fleet_fingerprint();
    serve.shutdown();
    (outcomes, fleet)
}

#[test]
fn per_tenant_transcripts_are_identical_across_shard_counts() {
    let tenants = 24;
    let baseline = run_fleet(SHARD_COUNTS[0], tenants);
    for &shards in &SHARD_COUNTS[1..] {
        let run = run_fleet(shards, tenants);
        for (t, (base, got)) in baseline.0.iter().zip(&run.0).enumerate() {
            assert_eq!(
                base.0, got.0,
                "tenant {t}: CommitReport transcript moved between 1 and {shards} shards"
            );
            assert_eq!(
                base.1, got.1,
                "tenant {t}: snapshot fingerprint moved between 1 and {shards} shards"
            );
        }
        assert_eq!(baseline.1, run.1, "fleet fingerprint moved at {shards} shards");
    }
}

#[test]
fn serve_transcripts_match_direct_replay() {
    // The service is a scheduler, not an engine: each tenant's transcript
    // must equal replaying its trace directly through the facade.
    use deco_core::edge::legal::{edge_log_depth, MessageMode};
    use deco_stream::{replay_trace_on, Recolorer, RegionRecolor, SegRecolorer};

    let tenants = 8;
    let (outcomes, _) = run_fleet(2, tenants);
    for (i, (reports, snap_fp)) in outcomes.iter().enumerate() {
        let trace = churn_trace(36 + (i % 5) * 8, 4, 3, 4, 0xf1ee7 ^ i as u64);
        let threshold = [10, 25, 60][i % 3];
        let cfg = RecolorConfig::default().with_repair_threshold(threshold);
        let mut engine: Box<dyn RegionRecolor> = if i % 2 == 0 {
            Box::new(
                Recolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg).unwrap(),
            )
        } else {
            Box::new(
                SegRecolorer::new_with(trace.n0, edge_log_depth(1), MessageMode::Long, cfg)
                    .unwrap(),
            )
        };
        let run = replay_trace_on(engine.as_mut(), &trace).unwrap();
        assert_eq!(&run.reports, reports, "tenant {i}: transcript diverged from direct replay");
        // Rebuild the snapshot fingerprint the service would publish.
        let graph = engine.snapshot();
        let direct = deco_serve::TenantSnapshot {
            epoch: engine.commits() as u64,
            commits: engine.commits(),
            n: graph.n(),
            m: graph.m(),
            max_degree: graph.max_degree(),
            color_bound: engine.color_bound(),
            coloring: engine.coloring(),
            graph,
        };
        assert_eq!(direct.fingerprint(), *snap_fp, "tenant {i}: snapshot diverged");
    }
}

#[test]
fn snapshot_reads_race_commits_safely() {
    // Hammer lock-free snapshot loads from reader threads while the fleet
    // commits: every loaded snapshot must be internally consistent (a
    // proper coloring of its own graph) and epochs must only grow.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let trace = churn_trace(60, 4, 6, 6, 0xace5);
    let serve = Arc::new(Serve::start(ServeConfig::default().with_shards(2)));
    let id = serve.register(TenantSpec::new("watched", trace.n0)).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let serve = Arc::clone(&serve);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = serve.snapshot(id).unwrap();
                    assert!(snap.epoch >= last_epoch, "epoch went backwards");
                    last_epoch = snap.epoch;
                    assert_eq!(snap.coloring.colors().len(), snap.m, "torn snapshot");
                    assert!(snap.coloring.is_proper(&snap.graph), "torn snapshot");
                }
            })
        })
        .collect();
    for batch in trace.batches() {
        for &op in batch {
            serve.submit_blocking(id, op).unwrap();
        }
        serve.commit_blocking(id).unwrap();
    }
    serve.drain();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader panicked");
    }
    assert_eq!(serve.snapshot(id).unwrap().epoch as usize, trace.commit_count());
}
