//! PR 2 differential tests: every migrated algorithm pipeline now runs on
//! the threaded slot engine end to end, and must be **bit-identical** across
//! thread budgets (1, 2, 8), across delivery modes (scan, push, adaptive)
//! and against the naive reference engine. A pipeline here means the whole
//! driver — auxiliary colorings, recursion levels, bottom phases — not a
//! single protocol run.

use deco_core::cole_vishkin::cv_three_color;
use deco_core::edge::legal::{edge_color_in_groups, edge_log_depth, MessageMode};
use deco_core::edge::panconesi_rizzi::pr_edge_color_in_groups;
use deco_core::legal::legal_color;
use deco_core::params::LegalParams;
use deco_core::reduction::delta_plus_one_coloring;
use deco_graph::{generators, Graph, Vertex};
use deco_local::{Delivery, Engine, Network};

/// One simulator configuration: a name and how to derive it from a fresh
/// network.
type Config = (&'static str, Box<dyn Fn(Network<'_>) -> Network<'_>>);

/// All simulator configurations every pipeline is differentially run under.
/// `with_threads(1)` is the sequential baseline; 2 and 8 exercise chunked
/// parallel stepping (the test graphs are big enough to cross the
/// parallelism threshold); scan/push pin the delivery modes; naive is the
/// pre-refactor reference engine.
fn configs() -> Vec<Config> {
    vec![
        ("threads-1", Box::new(|net: Network<'_>| net.with_threads(1))),
        ("threads-2", Box::new(|net: Network<'_>| net.with_threads(2))),
        ("threads-8", Box::new(|net: Network<'_>| net.with_threads(8))),
        ("delivery-scan", Box::new(|net: Network<'_>| net.with_delivery(Delivery::Scan))),
        ("delivery-push", Box::new(|net: Network<'_>| net.with_delivery(Delivery::Push))),
        ("engine-naive", Box::new(|net: Network<'_>| net.with_engine(Engine::Naive))),
    ]
}

/// Runs `driver` under every config and asserts the results agree with the
/// sequential run bit for bit.
fn assert_differential<T, D>(g: &Graph, driver: D)
where
    T: PartialEq + std::fmt::Debug,
    D: Fn(&Network<'_>) -> T,
{
    let reference = driver(&Network::new(g).with_threads(1));
    for (name, cfg) in configs() {
        let run = driver(&cfg(Network::new(g)));
        assert_eq!(run, reference, "pipeline diverged under {name}");
    }
}

/// The Panconesi–Rizzi pseudo-forest decomposition used by the CV tests.
fn ident_forest(g: &Graph) -> Vec<(u64, Vertex)> {
    let mut out: Vec<(u64, Vertex)> = vec![(0, 0); g.m()];
    for v in 0..g.n() {
        let mut parents: Vec<(u64, Vertex, usize)> = g
            .incident(v)
            .filter(|&(u, _)| g.ident(u) < g.ident(v))
            .map(|(u, e)| (g.ident(u), u, e))
            .collect();
        parents.sort_unstable();
        for (f, &(_, u, e)) in parents.iter().enumerate() {
            out[e] = (f as u64, u);
        }
    }
    out
}

#[test]
fn cole_vishkin_pipeline_differential() {
    // Big enough that rounds with ~3000 live nodes step in parallel.
    let g = generators::random_bounded_degree(3000, 8, 0xcf01);
    let spec = ident_forest(&g);
    assert_differential(&g, |net| cv_three_color(net, &spec));
}

#[test]
fn code_reduction_and_kw_reduction_pipeline_differential() {
    // delta_plus_one_coloring = Linial code reduction followed by the
    // Kuhn–Wattenhofer reduction: both migrated drivers in sequence.
    let g = generators::random_bounded_degree(3000, 7, 0xcf02);
    assert_differential(&g, delta_plus_one_coloring);
}

#[test]
fn legal_color_pipeline_differential() {
    // Torus has neighborhood independence <= 4; Δ = 4 keeps it fast while
    // n = 3136 crosses the parallel-stepping threshold.
    let g = generators::torus(56, 56);
    assert_differential(&g, |net| {
        let run = legal_color(net, 4, LegalParams::log_depth(4, 1)).expect("valid params");
        assert!(run.coloring.is_proper(net.graph()));
        (run.coloring, run.theta, run.levels, run.stats)
    });
}

#[test]
fn edge_pipeline_differential() {
    // Δ above the preset threshold so the edge recursion actually fires.
    let params = edge_log_depth(1);
    let g = generators::random_bounded_degree(1500, (params.lambda + 4) as usize, 0xcf03);
    let groups = vec![0u64; g.m()];
    assert_differential(&g, |net| {
        let run =
            edge_color_in_groups(net, &groups, 1, params, g.max_degree() as u64, MessageMode::Long)
                .expect("valid params");
        assert!(run.coloring.is_proper(&g));
        assert!(!run.levels.is_empty(), "recursion must fire for the test to mean anything");
        (run.coloring, run.theta, run.levels, run.stats)
    });
}

#[test]
fn panconesi_rizzi_pipeline_differential() {
    let g = generators::random_bounded_degree(2000, 9, 0xcf04);
    let groups = vec![0u64; g.m()];
    assert_differential(&g, |net| pr_edge_color_in_groups(net, &groups, g.max_degree() as u64));
}

#[test]
fn adaptive_matches_scan_on_every_pipeline() {
    // The adaptive mode is the default; pin it against forced scan on the
    // sparse-tail-heavy pipelines (PR and the edge driver have long quiet
    // phases — exactly where adaptive switches to push delivery).
    let params = edge_log_depth(1);
    let g = generators::random_bounded_degree(1200, (params.lambda + 2) as usize, 0xcf05);
    let groups = vec![0u64; g.m()];
    let adaptive = {
        let net = Network::new(&g).with_delivery(Delivery::Adaptive);
        edge_color_in_groups(&net, &groups, 1, params, g.max_degree() as u64, MessageMode::Long)
            .unwrap()
    };
    let scan = {
        let net = Network::new(&g).with_delivery(Delivery::Scan);
        edge_color_in_groups(&net, &groups, 1, params, g.max_degree() as u64, MessageMode::Long)
            .unwrap()
    };
    assert_eq!(adaptive.coloring, scan.coloring);
    assert_eq!(adaptive.stats, scan.stats);
    assert_eq!(adaptive.levels, scan.levels);
}
